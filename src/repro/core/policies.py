"""Allocation policies for the (k, d)-choice round.

A *policy* decides, given the current loads and the ``d`` sampled bins of a
round, which ``k`` balls land where.  Two policies from the paper are
implemented:

``StrictPolicy``
    The paper's (k, d)-choice rule (Section 1 and 1.1): a bin sampled ``m``
    times receives at most ``m`` balls.  Equivalently, place one ball in each
    of the ``d`` sampled bins sequentially and remove the ``d − k`` balls of
    maximal height (ties broken uniformly at random).

``GreedyPolicy``
    The relaxation sketched in Section 7 (future work): the multiplicity cap
    is dropped and the ``k`` balls are assigned greedily, one at a time, each
    to the currently least-loaded *distinct* sampled bin.  In the paper's
    (2, 3)-choice example with sampled loads ``{0, 2, 3}``, both balls go to
    the empty bin.

Both policies return the list of destination bins (with multiplicity); the
process applies the placements to its :class:`~repro.core.state.BinState`.
"""

from __future__ import annotations

import heapq
from typing import List, Protocol, Sequence

import numpy as np

__all__ = [
    "AllocationPolicy",
    "StrictPolicy",
    "GreedyPolicy",
    "get_policy",
    "strict_select",
    "capacity_select",
    "POLICIES",
]


def strict_select(
    loads: Sequence[int],
    samples: Sequence[int],
    k: int,
    tiebreak: np.ndarray,
) -> List[int]:
    """Strict (k, d)-choice selection with an explicit tie-break vector.

    This is the policy kernel shared by :class:`StrictPolicy` (which draws
    ``tiebreak`` from its generator) and the vectorized engine in
    :mod:`repro.core.vectorized` (which pre-draws tie-break blocks so that its
    random stream matches the scalar process draw for draw).
    """
    d = len(samples)
    # Place d virtual balls sequentially and record each ball's height.
    # ``extra[b]`` counts how many balls this round already went to bin b,
    # so the j-th ball landing in bin b has height loads[b] + extra[b] + 1.
    extra: dict[int, int] = {}
    heights = np.empty(d, dtype=np.int64)
    for j, bin_index in enumerate(samples):
        placed_before = extra.get(bin_index, 0)
        heights[j] = loads[bin_index] + placed_before + 1
        extra[bin_index] = placed_before + 1

    # Keep the k balls with the smallest heights; break ties uniformly at
    # random via the secondary sort key.
    order = np.lexsort((tiebreak, heights))
    kept = order[:k]
    return [samples[j] for j in kept]


def capacity_select(
    loads: Sequence[int],
    inv_capacity: np.ndarray,
    samples: Sequence[int],
    k: int,
    tiebreak: np.ndarray,
) -> List[int]:
    """:func:`strict_select` over *fractional fill* instead of raw height.

    The heterogeneous-bins extension (``hetero_bins`` workload): a bin of
    capacity ``c`` holding ``h`` balls is filled to ``h / c``, so the j-th
    virtual ball landing in bin ``b`` has fill
    ``(loads[b] + placed_before + 1) / capacity[b]`` and the strict rule
    keeps the ``k`` least-filled candidates.  With all capacities equal
    this reduces to :func:`strict_select` exactly (every fill is the raw
    height scaled by one constant).  Tie-breaking (equal fills, e.g.
    equal-capacity bins at equal load) stays uniform via the same
    secondary key.
    """
    d = len(samples)
    extra: dict[int, int] = {}
    fills = np.empty(d, dtype=np.float64)
    for j, bin_index in enumerate(samples):
        placed_before = extra.get(bin_index, 0)
        fills[j] = (loads[bin_index] + placed_before + 1) * inv_capacity[bin_index]
        extra[bin_index] = placed_before + 1

    order = np.lexsort((tiebreak, fills))
    kept = order[:k]
    return [samples[j] for j in kept]


class AllocationPolicy(Protocol):
    """Protocol implemented by every round-allocation policy."""

    name: str

    def select(
        self,
        loads: Sequence[int],
        samples: Sequence[int],
        k: int,
        rng: np.random.Generator,
    ) -> List[int]:
        """Return the ``k`` destination bins for this round.

        Parameters
        ----------
        loads:
            Current (unsorted) load vector; must support ``loads[i]``.
        samples:
            The ``d`` sampled bin indices, with replacement, in sampling
            order.
        k:
            Number of balls to place this round.
        rng:
            Random generator used only for tie breaking.
        """
        ...


class StrictPolicy:
    """The paper's multiplicity-capped (k, d)-choice rule."""

    name = "strict"

    def select(
        self,
        loads: Sequence[int],
        samples: Sequence[int],
        k: int,
        rng: np.random.Generator,
    ) -> List[int]:
        d = len(samples)
        if not 1 <= k <= d:
            raise ValueError(f"requires 1 <= k <= d, got k={k}, d={d}")
        if k == d:
            # Degenerate case: every sampled bin receives its ball; this is
            # the classical single-choice process run in batches of k.
            return list(samples)

        return strict_select(loads, samples, k, rng.random(d))


class GreedyPolicy:
    """Section 7 relaxation: greedy water-filling over the distinct samples.

    Each of the ``k`` balls goes to the least-loaded distinct sampled bin,
    taking into account the balls already placed this round.  A bin may
    therefore receive more balls than its sample multiplicity.
    """

    name = "greedy"

    def select(
        self,
        loads: Sequence[int],
        samples: Sequence[int],
        k: int,
        rng: np.random.Generator,
    ) -> List[int]:
        d = len(samples)
        if not 1 <= k <= d:
            raise ValueError(f"requires 1 <= k <= d, got k={k}, d={d}")

        distinct = list(dict.fromkeys(samples))  # preserves sampling order
        # Min-heap keyed by (current load within the round, random tiebreak).
        heap: List[tuple[int, float, int]] = [
            (loads[b], float(rng.random()), b) for b in distinct
        ]
        heapq.heapify(heap)

        destinations: List[int] = []
        for _ in range(k):
            load, _, bin_index = heapq.heappop(heap)
            destinations.append(bin_index)
            heapq.heappush(heap, (load + 1, float(rng.random()), bin_index))
        return destinations


POLICIES = {
    StrictPolicy.name: StrictPolicy,
    GreedyPolicy.name: GreedyPolicy,
}


def get_policy(name_or_policy: "str | AllocationPolicy") -> AllocationPolicy:
    """Resolve a policy name (or pass through a policy instance)."""
    if isinstance(name_or_policy, str):
        try:
            return POLICIES[name_or_policy]()
        except KeyError as exc:
            raise ValueError(
                f"unknown policy {name_or_policy!r}; choose from {sorted(POLICIES)}"
            ) from exc
    return name_or_policy
