"""One workload contract, every surface derived.

See :mod:`repro.workloads.records` for the contract and
:mod:`repro.workloads.library` for the scenario registrations.
"""

from .records import (
    Event,
    LEGACY_WORKLOAD_DEFAULTS,
    WORKLOADS,
    Workload,
    WorkloadError,
    available_workloads,
    bind_spec_params,
    generate_events,
    generate_workload_events,
    get_workload,
    register_workload,
    resolve_legacy,
    substrate_arrivals,
    workload_branches,
    workloads_dump,
)
from . import library  # noqa: F401  (registers the scenario library)

__all__ = [
    "Event",
    "LEGACY_WORKLOAD_DEFAULTS",
    "WORKLOADS",
    "Workload",
    "WorkloadError",
    "available_workloads",
    "bind_spec_params",
    "generate_events",
    "generate_workload_events",
    "get_workload",
    "register_workload",
    "resolve_legacy",
    "substrate_arrivals",
    "workload_branches",
    "workloads_dump",
]
