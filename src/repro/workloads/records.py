"""The workload contract: frozen records, one registry, every surface derived.

PR 7 collapsed the per-scheme *engine* surfaces into frozen kernel records;
this module does the same for the *workload* side.  A :class:`Workload` is a
frozen record naming a traffic scenario once — its parameter schema (with
defaults), a deterministic event generator over its own
:class:`~repro.simulation.rng.SeedTree` branches, an optional arrival-time
stamper, an optional per-tenant labeler, and optional hooks binding the
scenario to a serving spec (heterogeneous bin capacities) or to the cluster
substrate's arrival samplers.  Every consuming surface is *derived* from the
registry:

* ``repro.online.trace.generate_workload_events`` — a thin legacy shim
  (:func:`generate_workload_events` here) that resolves the historical
  kwargs to a registry entry,
* ``repro.serve.loadgen`` — builds its request stream via
  :func:`generate_events`,
* ``repro.simulation.workloads.workload_events`` — the batch/simulate
  surface, re-exporting :func:`generate_events`,
* the CLI's shared ``--workload NAME --workload-param KEY=VALUE`` flag
  group on ``stream`` / ``loadgen`` / ``cluster`` / ``simulate``.

Same (workload name, params, seed) therefore yields the byte-identical
event stream everywhere — the invariant the cross-surface equivalence
harness (``tests/integration/test_workload_surfaces.py``) locks down.

An *event* is a plain dict: ``{"op": "place"|"remove", "item": <int>}``,
optionally stamped with an arrival time ``"t"`` and/or a ``"tenant"``
label.  Every event carries an ``"item"`` id — the loadgen partitions its
connections by ``item`` — and removals only ever name live items.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

import numpy as np

from ..simulation.rng import SeedTree

__all__ = [
    "Event",
    "Workload",
    "WorkloadError",
    "WORKLOADS",
    "register_workload",
    "get_workload",
    "available_workloads",
    "generate_events",
    "bind_spec_params",
    "substrate_arrivals",
    "workloads_dump",
    "workload_branches",
    "LEGACY_WORKLOAD_DEFAULTS",
    "resolve_legacy",
    "generate_workload_events",
]

Event = Dict[str, Any]

#: ``(items, params, seed) -> events`` — the deterministic scenario core.
EventGenerator = Callable[[int, Mapping[str, Any], Optional[int]], List[Event]]

#: ``(events, params, seed) -> None`` — stamps ``"t"`` in place.
ArrivalStamper = Callable[[List[Event], Mapping[str, Any], Optional[int]], None]

#: ``(events, params) -> None`` — adds ``"tenant"`` labels in place.
TenantLabeler = Callable[[List[Event], Mapping[str, Any]], None]

#: ``(params, spec_params) -> extra spec params`` — scenario-driven spec
#: parameters (e.g. heterogeneous bin capacities).
SpecBinder = Callable[[Mapping[str, Any], Mapping[str, Any]], Dict[str, Any]]

#: ``(params) -> substrate arrival kwargs`` — how the cluster substrate's
#: job-trace sampler realizes this scenario's arrival process.
SubstrateArrivals = Callable[[Mapping[str, Any]], Dict[str, Any]]


class WorkloadError(ValueError):
    """Raised for unknown workloads or invalid workload parameters."""


@dataclass(frozen=True)
class Workload:
    """A frozen traffic scenario: the single registration every surface derives.

    Attributes
    ----------
    name:
        Registry key (the ``--workload`` spelling).
    summary:
        One-line human description (``repro workloads`` table).
    defaults:
        The parameter schema: accepted names with their default values.
        Values passed through ``--workload-param`` are validated against
        this mapping and coerced to the default's type.
    generator:
        Deterministic event-skeleton builder.  Scenario randomness comes
        from the workload seed's :class:`SeedTree` branches
        (:func:`workload_branches`), never from global state.
    stamper:
        Optional in-place arrival-time stamper (adds ``"t"``); runs on its
        own seed branch after the generator.
    labeler:
        Optional in-place per-tenant labeler (adds ``"tenant"``).
    binder:
        Optional hook contributing *spec* parameters derived from the
        workload params (e.g. ``hetero_bins`` capacities); consulted by
        the stream/simulate surfaces before building the allocator.
    arrivals:
        Optional hook mapping workload params to the cluster substrate's
        arrival kwargs; workloads without it are rejected by
        ``repro cluster --workload``.
    """

    name: str
    summary: str
    defaults: Mapping[str, Any] = field(default_factory=dict)
    generator: EventGenerator = None  # type: ignore[assignment]
    stamper: Optional[ArrivalStamper] = None
    labeler: Optional[TenantLabeler] = None
    binder: Optional[SpecBinder] = None
    arrivals: Optional[SubstrateArrivals] = None

    def resolve_params(
        self, params: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        """Merge ``params`` over the defaults, rejecting unknown names."""
        merged = dict(self.defaults)
        if not params:
            return merged
        unknown = set(params) - set(self.defaults)
        if unknown:
            raise WorkloadError(
                f"workload {self.name!r} does not accept parameter(s) "
                f"{sorted(unknown)}; accepted: {sorted(self.defaults)}"
            )
        for key, value in params.items():
            merged[key] = _coerce_param(self.name, key, value, self.defaults[key])
        return merged


def _coerce_param(workload: str, key: str, value: Any, default: Any) -> Any:
    """Coerce a user-supplied parameter to the declared default's type."""
    try:
        if isinstance(default, bool):
            if isinstance(value, bool):
                return value
            if isinstance(value, str) and value.lower() in ("true", "false"):
                return value.lower() == "true"
            if isinstance(value, (int, float)) and value in (0, 1):
                return bool(value)
            raise ValueError(f"expected a boolean, got {value!r}")
        if isinstance(default, int):
            as_float = float(value)
            as_int = int(as_float)
            if as_int != as_float:
                raise ValueError(f"expected an integer, got {value!r}")
            return as_int
        if isinstance(default, float):
            return float(value)
        if isinstance(default, str):
            return str(value)
    except (TypeError, ValueError) as exc:
        raise WorkloadError(
            f"workload {workload!r} parameter {key!r}: {exc}"
        ) from None
    return value


#: The registry: name -> frozen record, in registration order.
WORKLOADS: Dict[str, Workload] = {}


def register_workload(record: Workload) -> Workload:
    """Register a workload record (duplicate names are a programming error)."""
    if record.name in WORKLOADS:
        raise ValueError(f"workload {record.name!r} is already registered")
    if record.generator is None:
        raise ValueError(f"workload {record.name!r} needs an event generator")
    WORKLOADS[record.name] = record
    return record


def available_workloads() -> List[str]:
    """Registered workload names in registration order."""
    return list(WORKLOADS)


def get_workload(name: str) -> Workload:
    """Look up a registered workload, with a helpful error on typos."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {available_workloads()}"
        ) from None


def workload_branches(
    seed: Optional[int], count: int
) -> List[np.random.Generator]:
    """Independent generators for a workload's internal randomness concerns.

    Every v2 scenario derives its streams from fixed :class:`SeedTree`
    branch positions of the workload seed (branch 0 for the event skeleton,
    branch 1 for arrival stamping, ...), so generator and stamper draws
    never overlap and any surface reproducing the stream derives the exact
    same branches.  (The ``uniform`` workload is the one exception: it keeps
    the pre-registry seed derivation frozen for byte-compatibility with
    recorded traces.)
    """
    return SeedTree(seed).generators(count)


def generate_events(
    name: str,
    items: int,
    params: Optional[Mapping[str, Any]] = None,
    seed: Optional[int] = None,
) -> List[Event]:
    """The one entry point every surface calls: a scenario's event stream.

    ``items`` is the number of *placements*; removals (churn, adversarial
    evictions, hot-key re-placements) ride on top, so the stream always
    pins a serving spec's ``n_balls`` to exactly ``items``.
    """
    if items < 0:
        raise WorkloadError(f"items must be non-negative, got {items}")
    record = get_workload(name)
    merged = record.resolve_params(params)
    events = record.generator(int(items), merged, seed)
    if record.stamper is not None:
        record.stamper(events, merged, seed)
    if record.labeler is not None:
        record.labeler(events, merged)
    return events


def bind_spec_params(
    name: str,
    params: Optional[Mapping[str, Any]],
    spec_params: Mapping[str, Any],
) -> Dict[str, Any]:
    """Spec parameters this workload contributes (empty for most).

    Explicit spec params win over workload-derived ones, so a user can
    always override e.g. the capacity profile by passing ``--param
    capacities=...`` themselves.
    """
    record = get_workload(name)
    merged = record.resolve_params(params)  # validate even without a binder
    if record.binder is None:
        return {}
    contributed = record.binder(merged, spec_params)
    return {k: v for k, v in contributed.items() if k not in spec_params}


def substrate_arrivals(
    name: str, params: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """The cluster substrate's arrival kwargs for a workload.

    Only workloads registering an ``arrivals`` hook can drive the job-trace
    sampler (the substrate stamps its own arrival process; it does not
    consume per-item event streams); the rest are rejected with the list of
    scenarios that can.
    """
    record = get_workload(name)
    if record.arrivals is None:
        supported = [
            entry.name for entry in WORKLOADS.values()
            if entry.arrivals is not None
        ]
        raise WorkloadError(
            f"workload {name!r} does not map onto the cluster substrate's "
            f"arrival samplers; workloads that do: {supported}"
        )
    return record.arrivals(record.resolve_params(params))


def workloads_dump() -> Dict[str, Any]:
    """Machine-readable registry dump (the ``repro workloads --json`` body).

    Host-independent and stable across runs — the golden at
    ``tests/data/golden/workloads.json`` locks it down.
    """
    return {
        "format": "repro-workload-registry",
        "version": 1,
        "workloads": {
            record.name: {
                "summary": record.summary,
                "params": dict(record.defaults),
                "stamps_arrivals": record.stamper is not None
                or "arrival_process" in record.defaults,
                "tenant_labels": record.labeler is not None,
                "binds_spec_params": record.binder is not None,
                "substrate_arrivals": record.arrivals is not None,
            }
            for record in WORKLOADS.values()
        },
    }


# ----------------------------------------------------------------------
# Legacy flag bridge
# ----------------------------------------------------------------------
#: The historical kwargs of ``generate_workload_events`` and the CLI flag
#: spellings that alias them (``--arrival-process``/``--arrival-rate``/
#: ``--burstiness``/``--churn``).  They resolve to the ``uniform`` entry.
LEGACY_WORKLOAD_DEFAULTS: Dict[str, Any] = {
    "arrival_process": "none",
    "arrival_rate": 1000.0,
    "burstiness": 4.0,
    "switch_prob": 0.1,
    "churn": 0.0,
}


def resolve_legacy(
    arrival_process: str = "none",
    arrival_rate: float = 1000.0,
    burstiness: float = 4.0,
    switch_prob: float = 0.1,
    churn: float = 0.0,
) -> "tuple[str, Dict[str, Any]]":
    """Map the deprecated loose kwargs to a registered (name, params) pair."""
    return "uniform", {
        "arrival_process": arrival_process,
        "arrival_rate": arrival_rate,
        "burstiness": burstiness,
        "switch_prob": switch_prob,
        "churn": churn,
    }


def generate_workload_events(
    items: int,
    arrival_process: str = "none",
    arrival_rate: float = 1000.0,
    burstiness: float = 4.0,
    switch_prob: float = 0.1,
    churn: float = 0.0,
    seed: Optional[int] = None,
    workload: Optional[str] = None,
    workload_params: Optional[Mapping[str, Any]] = None,
) -> List[Event]:
    """A deterministic request stream: ``items`` placements plus removals.

    The legacy workload bridge, kept as a thin shim over the registry
    (``repro.online.trace`` re-exports it): the historical kwargs resolve
    to the ``uniform`` entry via :func:`resolve_legacy` and produce
    byte-identical streams to the pre-registry implementation.  Passing
    ``workload=`` selects any registered scenario instead; the legacy
    kwargs must then stay at their defaults (mixing the two spellings
    would be ambiguous).
    """
    if workload is None:
        name, params = resolve_legacy(
            arrival_process=arrival_process,
            arrival_rate=arrival_rate,
            burstiness=burstiness,
            switch_prob=switch_prob,
            churn=churn,
        )
        if workload_params:
            raise WorkloadError(
                "workload_params requires workload=<name>; the legacy "
                "kwargs configure the 'uniform' entry directly"
            )
        return generate_events(name, items, params, seed)
    legacy = {
        "arrival_process": arrival_process,
        "arrival_rate": arrival_rate,
        "burstiness": burstiness,
        "switch_prob": switch_prob,
        "churn": churn,
    }
    drifted = sorted(
        key for key, value in legacy.items()
        if value != LEGACY_WORKLOAD_DEFAULTS[key]
    )
    if drifted:
        raise WorkloadError(
            f"pass either workload={workload!r} with workload_params, or "
            f"the legacy kwargs {drifted} — not both"
        )
    return generate_events(workload, items, workload_params, seed)
