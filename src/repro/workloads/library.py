"""Scenario library v2: every traffic shape as one frozen registration.

Six scenarios cover ROADMAP item 3's open traffic shapes:

``uniform``
    The historical bridge workload — sequential unique items, optional
    Poisson/MMPP arrival stamping, optional uniform churn.  Its seed
    derivation is frozen to the pre-registry layout so the deprecated
    flag spellings keep producing byte-identical traces.
``zipf_items``
    Power-law item popularity: repeated draws over a key universe with
    Zipf weights (the storage substrate's :func:`zipf_weights` sampler),
    re-placing a key on every repeat hit — the update-heavy stream that
    exercises the weighted schemes.
``adversarial_burst``
    Worst-case bursts: after each burst of placements the adversary
    evicts the most recently placed items — exactly the bins that just
    won a probe — forcing the allocator to refill the same region.
``diurnal``
    A sinusoidal load curve: placements stamped by an inhomogeneous
    Poisson process (Lewis–Shedler thinning) whose rate swings around
    the mean with configurable amplitude and period.
``hetero_bins``
    Heterogeneous bin capacities: a geometric capacity ramp bound into
    the serving spec (``capacities=``) and threaded through the
    steppers' load comparison, with a plain uniform stream on top.
``multi_tenant``
    Interleaved per-tenant streams (``tenant = item % tenants``) with
    per-tenant churn; `LoadTelemetry` picks the labels up to maintain
    per-tenant max-load and fairness counters.

All scenario randomness comes from fixed :func:`workload_branches`
positions of the workload seed (branch 0: event skeleton, branch 1:
arrival stamping), so every surface reproducing a (name, params, seed)
triple derives the exact same streams.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from .records import (
    Event,
    Workload,
    WorkloadError,
    register_workload,
    workload_branches,
)

__all__ = ["uniform", "zipf_items", "adversarial_burst", "diurnal",
           "hetero_bins", "multi_tenant", "topology_aware"]


def _validate_churn(churn: float) -> float:
    if not 0.0 <= churn <= 1.0:
        raise WorkloadError(f"churn must lie in [0, 1], got {churn}")
    return float(churn)


def _places_with_churn(
    items: int,
    churn: float,
    rng: np.random.Generator,
    times: Optional[np.ndarray] = None,
) -> List[Event]:
    """``items`` sequential placements, each followed by a churn removal
    of one uniformly random live item with probability ``churn``.

    The shared skeleton behind ``uniform``/``diurnal``/``hetero_bins``/
    ``multi_tenant``; the draw order (one ``random()`` then one
    ``integers()`` per removal) is frozen — recorded traces depend on it.
    """
    events: List[Event] = []
    live: List[int] = []
    for index in range(items):
        event: Event = {"op": "place", "item": index}
        if times is not None:
            event["t"] = float(times[index])
        events.append(event)
        live.append(index)
        if churn > 0.0 and live and float(rng.random()) < churn:
            victim_position = int(rng.integers(0, len(live)))
            victim = live[victim_position]
            # Swap-with-last removal: same uniform victim for this draw,
            # O(1) instead of list.pop's O(live) element shift (which made
            # million-item churn workloads quadratic).
            live[victim_position] = live[-1]
            live.pop()
            removal: Event = {"op": "remove", "item": victim}
            if times is not None:
                removal["t"] = float(times[index])
            events.append(removal)
    return events


# ----------------------------------------------------------------------
# uniform — the legacy bridge entry
# ----------------------------------------------------------------------
def _uniform_events(
    items: int, params: Mapping[str, Any], seed: Optional[int]
) -> List[Event]:
    churn = _validate_churn(params["churn"])
    arrival_process = params["arrival_process"]
    times: Optional[np.ndarray] = None
    if arrival_process != "none":
        from ..simulation.workloads import sample_arrival_times

        times = sample_arrival_times(
            items,
            arrival_rate=params["arrival_rate"],
            arrival_process=arrival_process,
            burstiness=params["burstiness"],
            switch_prob=params["switch_prob"],
            seed=seed,
        )
        # sample_arrival_times consumed this generator's distribution from a
        # fresh default_rng(seed); reuse an independent stream for churn by
        # jumping to a child so the two draws never overlap.  This layout
        # predates the registry and is frozen: recorded traces and the
        # deprecated flag spellings must stay byte-identical.
        rng = np.random.default_rng(np.random.SeedSequence(seed).spawn(1)[0])
    else:
        rng = np.random.default_rng(seed)
    return _places_with_churn(items, churn, rng, times)


def _uniform_arrivals(params: Mapping[str, Any]) -> Dict[str, Any]:
    # The cluster substrate always stamps arrivals, so the stream surface's
    # "none" (unstamped events) maps to its default memoryless process.
    process = params["arrival_process"]
    return {
        "arrival_process": "poisson" if process == "none" else process,
        "arrival_rate": params["arrival_rate"],
        "burstiness": params["burstiness"],
    }


uniform = register_workload(Workload(
    name="uniform",
    summary="sequential unique items; optional Poisson/MMPP stamps and churn",
    defaults={
        "arrival_process": "none",
        "arrival_rate": 1000.0,
        "burstiness": 4.0,
        "switch_prob": 0.1,
        "churn": 0.0,
    },
    generator=_uniform_events,
    arrivals=_uniform_arrivals,
))


# ----------------------------------------------------------------------
# zipf_items — power-law item popularity
# ----------------------------------------------------------------------
def _zipf_events(
    items: int, params: Mapping[str, Any], seed: Optional[int]
) -> List[Event]:
    exponent = float(params["exponent"])
    universe = int(params["universe"]) or max(items, 1)
    if universe <= 0:
        raise WorkloadError(f"universe must be positive, got {universe}")
    if exponent < 0:
        raise WorkloadError(f"exponent must be non-negative, got {exponent}")
    from ..simulation.workloads import zipf_weights

    (rng,) = workload_branches(seed, 1)
    cumulative = np.cumsum(zipf_weights(universe, exponent))
    draws = rng.random(items)
    keys = np.minimum(
        np.searchsorted(cumulative, draws * cumulative[-1], side="right"),
        universe - 1,
    )
    events: List[Event] = []
    live: set = set()
    for key in (int(k) for k in keys):
        if key in live:
            # A repeat hit on a hot key is an update: the old copy leaves
            # its bin and the key is placed anew, so placements stay exactly
            # ``items`` while popular keys keep migrating.
            events.append({"op": "remove", "item": key})
        events.append({"op": "place", "item": key})
        live.add(key)
    return events


zipf_items = register_workload(Workload(
    name="zipf_items",
    summary="Zipf-skewed key popularity; repeat hits re-place the hot keys",
    defaults={"exponent": 1.1, "universe": 0},
    generator=_zipf_events,
))


# ----------------------------------------------------------------------
# adversarial_burst — evict what was just placed
# ----------------------------------------------------------------------
def _adversarial_events(
    items: int, params: Mapping[str, Any], seed: Optional[int]
) -> List[Event]:
    burst = int(params["burst"])
    attack = float(params["attack"])
    if burst <= 0:
        raise WorkloadError(f"burst must be positive, got {burst}")
    if not 0.0 <= attack <= 1.0:
        raise WorkloadError(f"attack must lie in [0, 1], got {attack}")
    events: List[Event] = []
    live: List[int] = []
    placed = 0
    while placed < items:
        width = min(burst, items - placed)
        for _ in range(width):
            events.append({"op": "place", "item": placed})
            live.append(placed)
            placed += 1
        # The adversary of the paper's lower-bound discussion: empty the
        # bins that just won a probe.  The most recently placed items sit
        # in the (currently) least-loaded bins, so evicting them forces
        # every scheme to keep refilling the same region.
        for _ in range(int(attack * width)):
            if not live:
                break
            events.append({"op": "remove", "item": live.pop()})
    return events


def _burst_stamper(
    events: List[Event], params: Mapping[str, Any], seed: Optional[int]
) -> None:
    rate = float(params["arrival_rate"])
    burstiness = float(params["burstiness"])
    burst = int(params["burst"])
    if rate <= 0:
        raise WorkloadError(f"arrival_rate must be positive, got {rate}")
    if burstiness < 1.0:
        raise WorkloadError(f"burstiness must be >= 1, got {burstiness}")
    rng = workload_branches(seed, 2)[1]
    now = 0.0
    placed = 0
    for event in events:
        if event["op"] == "place":
            # Bursts arrive back to back at ``rate * burstiness``; between
            # bursts the stream idles so the long-run mean stays ``rate``.
            if placed % burst == 0:
                now += float(rng.exponential(burst / rate))
            else:
                now += float(rng.exponential(1.0 / (rate * burstiness)))
            placed += 1
        # Evictions land with the burst that triggered them (same stamp),
        # mirroring the legacy churn convention.
        event["t"] = now


adversarial_burst = register_workload(Workload(
    name="adversarial_burst",
    summary="bursts of places, then eviction of the most recently placed items",
    defaults={
        "burst": 64,
        "attack": 0.5,
        "arrival_rate": 1000.0,
        "burstiness": 8.0,
    },
    generator=_adversarial_events,
    stamper=_burst_stamper,
))


# ----------------------------------------------------------------------
# diurnal — sinusoidal load curve
# ----------------------------------------------------------------------
def _diurnal_events(
    items: int, params: Mapping[str, Any], seed: Optional[int]
) -> List[Event]:
    churn = _validate_churn(params["churn"])
    (rng,) = workload_branches(seed, 1)
    return _places_with_churn(items, churn, rng)


def _diurnal_stamper(
    events: List[Event], params: Mapping[str, Any], seed: Optional[int]
) -> None:
    rate = float(params["arrival_rate"])
    period = float(params["period"])
    amplitude = float(params["amplitude"])
    if rate <= 0:
        raise WorkloadError(f"arrival_rate must be positive, got {rate}")
    if period <= 0:
        raise WorkloadError(f"period must be positive, got {period}")
    if not 0.0 <= amplitude < 1.0:
        raise WorkloadError(f"amplitude must lie in [0, 1), got {amplitude}")
    rng = workload_branches(seed, 2)[1]
    # Lewis–Shedler thinning: candidate arrivals at the peak rate, accepted
    # with probability rate(t)/peak — an exact inhomogeneous Poisson draw.
    peak = rate * (1.0 + amplitude)
    now = 0.0
    for event in events:
        if event["op"] == "place":
            while True:
                now += float(rng.exponential(1.0 / peak))
                current = rate * (
                    1.0 + amplitude * math.sin(2.0 * math.pi * now / period)
                )
                if float(rng.random()) * peak <= current:
                    break
        event["t"] = now


diurnal = register_workload(Workload(
    name="diurnal",
    summary="sinusoidal arrival-rate curve (inhomogeneous Poisson stamps)",
    defaults={
        "arrival_rate": 1000.0,
        "period": 60.0,
        "amplitude": 0.8,
        "churn": 0.0,
    },
    generator=_diurnal_events,
    stamper=_diurnal_stamper,
))


# ----------------------------------------------------------------------
# hetero_bins — heterogeneous bin capacities
# ----------------------------------------------------------------------
def _hetero_events(
    items: int, params: Mapping[str, Any], seed: Optional[int]
) -> List[Event]:
    churn = _validate_churn(params["churn"])
    (rng,) = workload_branches(seed, 1)
    return _places_with_churn(items, churn, rng)


def _hetero_binder(
    params: Mapping[str, Any], spec_params: Mapping[str, Any]
) -> Dict[str, Any]:
    spread = float(params["spread"])
    if spread < 1.0:
        raise WorkloadError(f"spread must be >= 1, got {spread}")
    n_bins = spec_params.get("n_bins")
    if n_bins is None:
        raise WorkloadError(
            "hetero_bins derives its capacity ramp from the spec's n_bins; "
            "pass --param n_bins=<count>"
        )
    n = int(n_bins)
    if n <= 0:
        raise WorkloadError(f"n_bins must be positive, got {n}")
    # A deterministic geometric ramp from 1 to ``spread`` — no seed
    # involved, so every surface (and every snapshot restore) rebuilds
    # the identical capacity vector from the spec params alone.
    if n == 1:
        capacities = [1.0]
    else:
        capacities = [float(spread ** (i / (n - 1))) for i in range(n)]
    return {"capacities": capacities}


hetero_bins = register_workload(Workload(
    name="hetero_bins",
    summary="uniform stream over a geometric bin-capacity ramp (capacities=)",
    defaults={"spread": 4.0, "churn": 0.0},
    generator=_hetero_events,
    binder=_hetero_binder,
))


# ----------------------------------------------------------------------
# multi_tenant — interleaved per-tenant streams
# ----------------------------------------------------------------------
def _multi_tenant_events(
    items: int, params: Mapping[str, Any], seed: Optional[int]
) -> List[Event]:
    churn = _validate_churn(params["churn"])
    if int(params["tenants"]) <= 0:
        raise WorkloadError(
            f"tenants must be positive, got {params['tenants']}"
        )
    (rng,) = workload_branches(seed, 1)
    return _places_with_churn(items, churn, rng)


def _tenant_labeler(events: List[Event], params: Mapping[str, Any]) -> None:
    tenants = int(params["tenants"])
    # Round-robin interleave: tenant identity is a pure function of the
    # item id, so churn removals inherit the right label for free and the
    # labeling stays identical across surfaces and replays.
    for event in events:
        event["tenant"] = int(event["item"]) % tenants


multi_tenant = register_workload(Workload(
    name="multi_tenant",
    summary="round-robin interleaved tenant streams with per-tenant churn",
    defaults={"tenants": 4, "churn": 0.0},
    generator=_multi_tenant_events,
    labeler=_tenant_labeler,
))


# ----------------------------------------------------------------------
# topology_aware — zone-tagged arrivals over a rack/zone grid
# ----------------------------------------------------------------------
def _topology_events(
    items: int, params: Mapping[str, Any], seed: Optional[int]
) -> List[Event]:
    churn = _validate_churn(params["churn"])
    if int(params["zones"]) <= 0:
        raise WorkloadError(f"zones must be positive, got {params['zones']}")
    if int(params["racks_per_zone"]) <= 0:
        raise WorkloadError(
            f"racks_per_zone must be positive, got {params['racks_per_zone']}"
        )
    (rng,) = workload_branches(seed, 1)
    return _places_with_churn(items, churn, rng)


def _topology_labeler(events: List[Event], params: Mapping[str, Any]) -> None:
    zones = int(params["zones"])
    # Round-robin home zones: zone identity is a pure function of the item
    # id, matching the steppers' home assignment (ball index % n_zones), so
    # the driver's cross-zone attribution agrees with the kernel counters.
    for event in events:
        event["zone"] = int(event["item"]) % zones


def _topology_binder(
    params: Mapping[str, Any], spec_params: Mapping[str, Any]
) -> Dict[str, Any]:
    from ..topology.records import Topology

    zones = int(params["zones"])
    racks_per_zone = int(params["racks_per_zone"])
    n_bins = spec_params.get("n_bins")
    if n_bins is None:
        raise WorkloadError(
            "topology_aware derives its rack/zone grid from the spec's "
            "n_bins; pass --param n_bins=<count>"
        )
    n = int(n_bins)
    if n <= 0:
        raise WorkloadError(f"n_bins must be positive, got {n}")
    # A deterministic grid — no seed involved, so every surface (and every
    # snapshot restore) rebuilds the identical tree from the params alone.
    topology = Topology.grid(n, zones, racks_per_zone)
    return {"topology": topology.to_dict()}


topology_aware = register_workload(Workload(
    name="topology_aware",
    summary="zone-tagged arrivals over a rack/zone grid (topology=)",
    defaults={"zones": 2, "racks_per_zone": 1, "churn": 0.0},
    generator=_topology_events,
    stamper=None,
    labeler=_topology_labeler,
    binder=_topology_binder,
))
