"""Unit tests for repro.analysis.statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.statistics import (
    confidence_interval,
    empirical_cdf,
    format_value_set,
    observed_value_set,
    stochastic_dominance_fraction,
    trial_statistics,
)


class TestTrialStatistics:
    def test_basic_summary(self):
        stats = trial_statistics([1, 2, 3, 4])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1
        assert stats.maximum == 4
        assert stats.median == pytest.approx(2.5)

    def test_single_value_has_zero_std(self):
        assert trial_statistics([7]).std == 0.0

    def test_std_uses_sample_variance(self):
        stats = trial_statistics([1, 3])
        assert stats.std == pytest.approx(np.std([1, 3], ddof=1))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            trial_statistics([])

    def test_as_dict_round_trip(self):
        d = trial_statistics([2, 2, 3]).as_dict()
        assert d["count"] == 3
        assert d["max"] == 3


class TestValueSets:
    def test_observed_value_set_sorted_unique(self):
        assert observed_value_set([3, 2, 2, 3, 2]) == [2, 3]

    def test_observed_value_set_casts_to_int(self):
        assert observed_value_set([2.0, 3.0]) == [2, 3]

    def test_format_matches_paper_style(self):
        assert format_value_set([2, 3, 2]) == "2, 3"
        assert format_value_set([2]) == "2"

    def test_format_table1_single_choice_cell(self):
        assert format_value_set([8, 7, 9, 8]) == "7, 8, 9"


class TestConfidenceInterval:
    def test_contains_mean(self):
        low, high = confidence_interval([1, 2, 3, 4, 5])
        assert low <= 3.0 <= high

    def test_single_sample_degenerate(self):
        assert confidence_interval([4.0]) == (4.0, 4.0)

    def test_width_shrinks_with_more_samples(self):
        small = confidence_interval([1, 2, 3, 4] * 2)
        large = confidence_interval([1, 2, 3, 4] * 50)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_higher_confidence_is_wider(self):
        data = [1, 2, 3, 4, 5, 6]
        narrow = confidence_interval(data, confidence=0.5)
        wide = confidence_interval(data, confidence=0.99)
        assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval([1, 2], confidence=1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval([])


class TestEmpiricalCdf:
    def test_sorted_values_and_final_probability_one(self):
        values, cdf = empirical_cdf([3, 1, 2])
        assert list(values) == [1, 2, 3]
        assert cdf[-1] == pytest.approx(1.0)

    def test_monotone(self):
        _, cdf = empirical_cdf([5, 1, 4, 4, 2])
        assert all(cdf[i] <= cdf[i + 1] for i in range(len(cdf) - 1))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])


class TestStochasticDominance:
    def test_clearly_dominated_sample(self):
        smaller = [1, 1, 2, 2]
        larger = [3, 4, 4, 5]
        assert stochastic_dominance_fraction(smaller, larger) == pytest.approx(1.0)

    def test_identical_samples_fully_consistent(self):
        sample = [2, 3, 3, 4]
        assert stochastic_dominance_fraction(sample, sample) == pytest.approx(1.0)

    def test_reversed_order_fails_somewhere(self):
        smaller = [5, 6, 7]
        larger = [1, 2, 3]
        assert stochastic_dominance_fraction(smaller, larger) < 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stochastic_dominance_fraction([], [1])
