"""Unit tests for repro.analysis.asymptotics."""

from __future__ import annotations

import math

import pytest

from repro.analysis.asymptotics import (
    d_k,
    delta,
    inverse_factorial,
    ln_ln,
    log_binomial,
    log_ratio,
    polylog,
    stirling_inverse_factorial,
)


class TestDk:
    def test_two_choice(self):
        assert d_k(1, 2) == pytest.approx(2.0)

    def test_paper_example_k_half_d(self):
        assert d_k(4, 8) == pytest.approx(2.0)

    def test_k_close_to_d_is_large(self):
        assert d_k(99, 100) == pytest.approx(100.0)

    def test_k_equal_d_is_infinite(self):
        assert math.isinf(d_k(5, 5))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            d_k(3, 2)
        with pytest.raises(ValueError):
            d_k(0, 2)


class TestDelta:
    def test_positive_for_large_n(self):
        assert delta(10 ** 6) > 0

    def test_eventually_decreasing_in_n(self):
        # δ(n) peaks near n = e^(e^e) and then decays towards 0.
        assert delta(10 ** 40) < delta(10 ** 9)

    def test_small_n_clamped_to_zero(self):
        assert delta(2) == 0.0
        assert delta(10) == 0.0

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            delta(0)

    def test_formula_for_large_n(self):
        n = 10 ** 8
        expected = math.log(math.log(math.log(n))) / math.log(math.log(n))
        assert delta(n) == pytest.approx(expected)


class TestIteratedLogs:
    def test_ln_ln_value(self):
        assert ln_ln(math.e ** math.e) == pytest.approx(1.0)

    def test_ln_ln_clamped(self):
        assert ln_ln(1.0) == 0.0
        assert ln_ln(2.0) == 0.0  # ln 2 < 1 so ln ln 2 < 0 -> clamp

    def test_log_ratio_value(self):
        x = 10 ** 6
        assert log_ratio(x) == pytest.approx(math.log(x) / math.log(math.log(x)))

    def test_log_ratio_clamped(self):
        assert log_ratio(1.0) == 0.0
        assert log_ratio(2.0) == 0.0

    def test_log_ratio_monotone_for_large_x(self):
        assert log_ratio(10 ** 9) > log_ratio(10 ** 5)


class TestInverseFactorial:
    @pytest.mark.parametrize(
        "bound,expected",
        [(0.5, 0), (1, 1), (2, 2), (5, 2), (6, 3), (24, 4), (119, 4), (120, 5)],
    )
    def test_exact_values(self, bound, expected):
        assert inverse_factorial(bound) == expected

    def test_large_bound(self):
        y = inverse_factorial(10 ** 12)
        assert math.factorial(y) <= 10 ** 12 < math.factorial(y + 1)

    def test_stirling_approximation_is_a_lower_estimate_of_right_order(self):
        # ln c / ln ln c is the leading term only; at finite sizes it
        # underestimates the exact inversion but stays within a small factor.
        bound = 10 ** 9
        exact = inverse_factorial(bound)
        approx = stirling_inverse_factorial(bound)
        assert approx <= exact <= 2.5 * approx


class TestLogBinomial:
    def test_matches_math_comb(self):
        assert log_binomial(10, 3) == pytest.approx(math.log(math.comb(10, 3)))

    def test_out_of_range_is_minus_infinity(self):
        assert log_binomial(5, 7) == -math.inf
        assert log_binomial(5, -1) == -math.inf

    def test_edges(self):
        assert log_binomial(5, 0) == pytest.approx(0.0)
        assert log_binomial(5, 5) == pytest.approx(0.0)


class TestPolylog:
    def test_exponent_one(self):
        assert polylog(100, 1.0) == pytest.approx(math.log(100))

    def test_exponent_two(self):
        assert polylog(100, 2.0) == pytest.approx(math.log(100) ** 2)

    def test_small_n_clamped(self):
        assert polylog(1) == 0.0
