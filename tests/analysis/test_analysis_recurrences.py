"""Unit tests for the layered-induction recurrences (β_i and γ_i)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.recurrences import (
    LayeredInduction,
    beta_sequence,
    beta_zero,
    gamma_sequence,
    gamma_star,
    gamma_zero,
    predicted_i_star,
)


N = 3 * 2 ** 16


class TestLandmarks:
    def test_beta_zero_formula(self):
        # d_k = 2 for (4, 8): beta0 = n / 12.
        assert beta_zero(4, 8, N) == pytest.approx(N / 12)

    def test_beta_zero_zero_when_k_equals_d(self):
        assert beta_zero(3, 3, N) == 0.0

    def test_gamma_zero_formula(self):
        assert gamma_zero(8, N) == pytest.approx(N / 8)

    def test_gamma_zero_rejects_bad_d(self):
        with pytest.raises(ValueError):
            gamma_zero(0, N)

    def test_gamma_star_formula(self):
        # d_k = 17 for (16, 17): gamma* = 4n/17.
        assert gamma_star(16, 17, N) == pytest.approx(4 * N / 17)

    def test_gamma_star_below_n_for_growing_dk(self):
        assert gamma_star(63, 64, N) < N


class TestPredictedIStar:
    def test_formula(self):
        expected = math.log(math.log(N)) / math.log(5)
        assert predicted_i_star(4, 8, N) == pytest.approx(expected)

    def test_infinite_when_d_equals_k(self):
        assert math.isinf(predicted_i_star(3, 3, N))

    def test_small_n_clamped(self):
        assert predicted_i_star(1, 2, 2) == 0.0


class TestBetaSequence:
    def test_starts_at_beta_zero(self):
        sequence = beta_sequence(4, 8, N)
        assert sequence[0] == pytest.approx(beta_zero(4, 8, N))

    def test_strictly_decreasing(self):
        sequence = beta_sequence(4, 8, N)
        assert all(a > b for a, b in zip(sequence, sequence[1:]))

    def test_terminates_below_cutoff(self):
        sequence = beta_sequence(4, 8, N)
        assert sequence[-1] < 6 * math.log(N)

    def test_length_close_to_predicted_i_star(self):
        sequence = beta_sequence(4, 8, N)
        # The number of useful layers should not exceed the closed-form bound
        # by more than a small constant.
        assert len(sequence) - 1 <= predicted_i_star(4, 8, N) + 3

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            beta_sequence(4, 4, N)
        with pytest.raises(ValueError):
            beta_sequence(1, 2, 1)

    def test_doubly_exponential_decay(self):
        # Successive ratios should shrink extremely fast (layered induction).
        sequence = beta_sequence(1, 2, N)
        if len(sequence) >= 3:
            first_ratio = sequence[1] / sequence[0]
            second_ratio = sequence[2] / sequence[1]
            assert second_ratio < first_ratio


class TestGammaSequence:
    def test_starts_at_gamma_zero(self):
        sequence = gamma_sequence(4, 8, N)
        assert sequence[0] == pytest.approx(gamma_zero(8, N))

    def test_decreasing(self):
        sequence = gamma_sequence(4, 8, N)
        assert all(a >= b for a, b in zip(sequence, sequence[1:]))

    def test_terminates_below_cutoff(self):
        sequence = gamma_sequence(4, 8, N)
        assert sequence[-1] < 9 * math.log(N)

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            gamma_sequence(5, 5, N)


class TestLayeredInduction:
    def test_compute_bundles_everything(self):
        layered = LayeredInduction.compute(4, 8, N)
        assert layered.beta0 == pytest.approx(beta_zero(4, 8, N))
        assert layered.gamma0 == pytest.approx(gamma_zero(8, N))
        assert layered.gamma_star == pytest.approx(gamma_star(4, 8, N))
        assert layered.i_star_upper == len(layered.beta) - 1
        assert layered.i_star_predicted == pytest.approx(predicted_i_star(4, 8, N))

    def test_beta_layers_bound_max_load_contribution(self):
        # y0 + i* + 2 with y0 = O(1) should be a single-digit number for
        # (4, 8) at the paper's n — consistent with Table 1's measured 3.
        layered = LayeredInduction.compute(4, 8, N)
        assert layered.i_star_upper + 2 <= 8
