"""Unit tests for the empirical majorization / domination checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.majorization import (
    MajorizationReport,
    compare_processes,
    empirical_majorization_fraction,
    mean_prefix_profile,
    prefix_sum_profile,
)
from repro.core.process import run_kd_choice
from repro.core.types import AllocationResult


def _result(loads):
    loads = np.asarray(loads)
    return AllocationResult(
        loads=loads, scheme="t", n_bins=loads.shape[0], n_balls=int(loads.sum())
    )


class TestPrefixProfiles:
    def test_prefix_sum_profile_of_array(self):
        assert list(prefix_sum_profile(np.array([1, 3, 0, 2]))) == [3, 5, 6, 6]

    def test_prefix_sum_profile_of_result(self):
        assert list(prefix_sum_profile(_result([2, 0, 1]))) == [2, 3, 3]

    def test_mean_prefix_profile_averages(self):
        # Profiles are built from the *sorted* loads: [2, 0] -> [2, 2] and
        # [0, 4] -> [4, 4]; the mean is [3, 3].
        profile = mean_prefix_profile([np.array([2, 0]), np.array([0, 4])])
        assert list(profile) == [3.0, 3.0]

    def test_mean_prefix_profile_rejects_empty(self):
        with pytest.raises(ValueError):
            mean_prefix_profile([])


class TestEmpiricalMajorizationFraction:
    def test_balanced_majorized_by_concentrated(self):
        balanced = [_result([1, 1, 1, 1])]
        concentrated = [_result([4, 0, 0, 0])]
        assert empirical_majorization_fraction(balanced, concentrated) == 1.0

    def test_reverse_direction_fails(self):
        balanced = [_result([1, 1, 1, 1])]
        concentrated = [_result([4, 0, 0, 0])]
        assert empirical_majorization_fraction(concentrated, balanced) < 1.0

    def test_tolerance_allows_slack(self):
        a = [_result([2, 1, 1])]
        b = [_result([2, 1, 0])]
        # a has one more ball, so strictly it is not majorized by b; a
        # tolerance of 1 ball per rank accepts it.
        assert empirical_majorization_fraction(a, b, tolerance=1.0) == 1.0

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ValueError):
            empirical_majorization_fraction([_result([1, 1])], [_result([1, 1, 0])])


class TestCompareProcesses:
    def test_two_choice_majorized_by_single_choice(self):
        report = compare_processes(
            run_small=lambda s: run_kd_choice(512, 1, 2, seed=s),
            run_large=lambda s: run_kd_choice(512, 1, 1, seed=s),
            trials=6,
            seeds=list(range(12)),
            label_small="greedy[2]",
            label_large="single",
            tolerance=5.0,
        )
        assert report.consistent
        assert report.mean_max_small <= report.mean_max_large

    def test_report_dict_has_labels(self):
        report = MajorizationReport(
            label_small="a",
            label_large="b",
            trials=3,
            prefix_fraction=1.0,
            max_load_dominance=1.0,
            mean_max_small=2.0,
            mean_max_large=3.0,
        )
        d = report.as_dict()
        assert d["small"] == "a"
        assert d["large"] == "b"
        assert d["consistent"] is True

    def test_inconsistent_report_flagged(self):
        report = MajorizationReport(
            label_small="a",
            label_large="b",
            trials=3,
            prefix_fraction=0.2,
            max_load_dominance=0.1,
            mean_max_small=9.0,
            mean_max_large=2.0,
        )
        assert not report.consistent

    def test_requires_enough_seeds(self):
        with pytest.raises(ValueError):
            compare_processes(
                run_small=lambda s: run_kd_choice(64, 1, 2, seed=s),
                run_large=lambda s: run_kd_choice(64, 1, 1, seed=s),
                trials=4,
                seeds=[1, 2, 3],
            )

    def test_requires_positive_trials(self):
        with pytest.raises(ValueError):
            compare_processes(
                run_small=lambda s: run_kd_choice(64, 1, 2, seed=s),
                run_large=lambda s: run_kd_choice(64, 1, 1, seed=s),
                trials=0,
                seeds=[],
            )
