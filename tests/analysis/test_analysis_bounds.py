"""Unit tests for the Theorem 1 / Theorem 2 / Corollary 1 bound formulas."""

from __future__ import annotations

import math

import pytest

from repro.analysis.bounds import (
    classify_regime,
    corollary1_term,
    d_choice_max_load,
    heavy_case_gap_prediction,
    message_cost,
    predicted_max_load,
    single_choice_max_load,
    theorem1_bounds,
    theorem1_leading_term,
    theorem2_bounds,
)


N = 3 * 2 ** 16


class TestRegimeClassification:
    def test_two_choice_is_constant_dk(self):
        assert classify_regime(1, 2, N).name == "dk_constant"

    def test_half_ratio_is_constant_dk(self):
        assert classify_regime(8, 16, N).name == "dk_constant"

    def test_k_close_to_d_is_growing(self):
        assert classify_regime(63, 64, N).name == "dk_growing"

    def test_k_equals_d_is_single_choice_like(self):
        assert classify_regime(4, 4, N).name == "single_choice_like"

    def test_extreme_dk_is_single_choice_like(self):
        # d_k enormous relative to n triggers the Corollary 1 regime.
        assert classify_regime(2 ** 16 - 1, 2 ** 16, 64).name == "single_choice_like"

    def test_regime_records_dk(self):
        regime = classify_regime(3, 5, N)
        assert regime.dk == pytest.approx(2.5)


class TestTheorem1:
    def test_constant_regime_leading_term(self):
        # d - k + 1 = 5: ln ln n / ln 5.
        term = theorem1_leading_term(4, 8, N)
        expected = math.log(math.log(N)) / math.log(5)
        assert term == pytest.approx(expected)

    def test_growing_regime_adds_dk_term(self):
        k, d = 63, 64
        term = theorem1_leading_term(k, d, N)
        base = math.log(math.log(N)) / math.log(d - k + 1)
        assert term > base

    def test_k_equals_d_behaves_like_single_choice(self):
        assert theorem1_leading_term(4, 4, N) == pytest.approx(single_choice_max_load(N))

    def test_bounds_straddle_leading_term(self):
        lower, upper = theorem1_bounds(4, 8, N, additive_constant=2.0)
        term = theorem1_leading_term(4, 8, N)
        assert lower <= term <= upper
        assert upper == pytest.approx(term + 2.0)

    def test_lower_bound_never_below_one(self):
        lower, _ = theorem1_bounds(16, 32, N, additive_constant=10.0)
        assert lower >= 1.0

    def test_leading_term_decreases_with_probe_surplus(self):
        # Larger d - k means a smaller first term.
        assert theorem1_leading_term(2, 20, N) < theorem1_leading_term(2, 4, N)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            theorem1_leading_term(1, 2, 0)

    def test_predicted_max_load_alias(self):
        assert predicted_max_load(4, 8, N) == theorem1_leading_term(4, 8, N)


class TestCorollary1:
    def test_matches_log_ratio_of_dk(self):
        k, d = 99, 100
        expected = math.log(100) / math.log(math.log(100))
        assert corollary1_term(k, d, N) == pytest.approx(expected)

    def test_k_equals_d_falls_back_to_single_choice(self):
        assert corollary1_term(5, 5, N) == pytest.approx(single_choice_max_load(N))


class TestTheorem2:
    def test_requires_d_at_least_2k(self):
        with pytest.raises(ValueError):
            theorem2_bounds(4, 7, m=10 * N, n=N)

    def test_bounds_ordered(self):
        lower, upper = theorem2_bounds(2, 4, m=4 * N, n=N)
        assert lower <= upper

    def test_lower_bound_nonnegative(self):
        lower, _ = theorem2_bounds(2, 4, m=2 * N, n=N, additive_constant=100)
        assert lower >= 0.0

    def test_floor_ratio_one_gives_infinite_upper(self):
        # d = 2k exactly with k=d/2: floor(d/k) = 2 > 1 so finite; contrast
        # with a hypothetical floor of 1 by passing d=2, k=1 (floor 2) vs
        # k=3,d=6 -> floor 2.  Construct floor ratio 1 via d=2k-? not allowed.
        # Instead check that the upper bound uses ln floor(d/k).
        lower, upper = theorem2_bounds(3, 6, m=2 * N, n=N, additive_constant=0)
        assert upper == pytest.approx(math.log(math.log(N)) / math.log(2))

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            theorem2_bounds(1, 2, m=0, n=N)

    def test_heavy_gap_prediction_between_bounds(self):
        prediction = heavy_case_gap_prediction(2, 4, N)
        lower, upper = theorem2_bounds(2, 4, m=2 * N, n=N, additive_constant=0.0)
        assert lower <= prediction <= upper


class TestAnchors:
    def test_single_choice_formula(self):
        assert single_choice_max_load(N) == pytest.approx(
            math.log(N) / math.log(math.log(N))
        )

    def test_d_choice_formula(self):
        assert d_choice_max_load(N, 2) == pytest.approx(
            math.log(math.log(N)) / math.log(2)
        )

    def test_d_choice_with_d_one_is_single_choice(self):
        assert d_choice_max_load(N, 1) == pytest.approx(single_choice_max_load(N))

    def test_single_choice_larger_than_two_choice(self):
        assert single_choice_max_load(N) > d_choice_max_load(N, 2)


class TestMessageCost:
    def test_exact_division(self):
        assert message_cost(4, 8, 100) == 25 * 8

    def test_ceiling_division(self):
        assert message_cost(3, 5, 10) == 4 * 5

    def test_two_choice_cost(self):
        assert message_cost(1, 2, 1000) == 2000

    def test_kd_choice_with_d_2k_costs_2n(self):
        # The paper's "constant max load with 2n messages" configuration.
        n = 4096
        assert message_cost(16, 32, n) == 2 * n

    def test_near_minimal_cost_configuration(self):
        # d = k + ln n with k = ln^2 n costs (1 + o(1)) n messages.
        n = 2 ** 16
        k = round(math.log(n) ** 2)
        d = k + round(math.log(n))
        assert message_cost(k, d, n) / n < 1.15

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            message_cost(0, 2, 10)
        with pytest.raises(ValueError):
            message_cost(3, 2, 10)
