"""Unit tests for the exact tiny-instance distributions."""

from __future__ import annotations

import math

import pytest

from repro.analysis.exact import (
    empirical_max_load_distribution,
    exact_kd_choice_distribution,
    exact_single_choice_distribution,
    expected_max_load,
    max_load_distribution,
    total_variation_distance,
)


class TestExactDistributions:
    def test_probabilities_sum_to_one(self):
        distribution = exact_kd_choice_distribution(4, 2, 3)
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_states_are_sorted_and_conserve_balls(self):
        distribution = exact_kd_choice_distribution(4, 2, 3)
        for state in distribution:
            assert list(state) == sorted(state, reverse=True)
            assert sum(state) == 4

    def test_single_choice_two_bins_two_balls_closed_form(self):
        # Two balls into two bins uniformly: P(2,0) = 1/2, P(1,1) = 1/2.
        distribution = exact_single_choice_distribution(2, 2)
        assert distribution[(2, 0)] == pytest.approx(0.5)
        assert distribution[(1, 1)] == pytest.approx(0.5)

    def test_two_choice_two_bins_always_balanced(self):
        # Two-choice with 2 bins: the first ball lands anywhere, the second
        # sees both bins (d = 2 samples, at least probability of hitting the
        # empty one)... the exact result: P(1,1) = 3/4, P(2,0) = 1/4.
        distribution = exact_kd_choice_distribution(2, 1, 2, n_balls=2)
        assert distribution[(1, 1)] == pytest.approx(0.75)
        assert distribution[(2, 0)] == pytest.approx(0.25)

    def test_k_equals_d_matches_single_choice(self):
        # (k, k)-choice is batched single choice: same end distribution.
        batched = exact_kd_choice_distribution(3, 3, 3)
        single = exact_single_choice_distribution(3, 3)
        for state in set(batched) | set(single):
            assert batched.get(state, 0.0) == pytest.approx(single.get(state, 0.0))

    def test_more_probes_stochastically_lower_max(self):
        few = max_load_distribution(exact_kd_choice_distribution(4, 1, 1))
        many = max_load_distribution(exact_kd_choice_distribution(4, 1, 3))
        # P(max >= 3) must be smaller with more probes.
        p_few = sum(p for v, p in few.items() if v >= 3)
        p_many = sum(p for v, p in many.items() if v >= 3)
        assert p_many < p_few

    def test_expected_max_load_consistent(self):
        distribution = exact_kd_choice_distribution(4, 2, 3)
        by_hand = sum(state[0] * mass for state, mass in distribution.items())
        assert expected_max_load(distribution) == pytest.approx(by_hand)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            exact_kd_choice_distribution(4, 3, 2)
        with pytest.raises(ValueError):
            exact_kd_choice_distribution(4, 2, 3, n_balls=5)

    def test_enumeration_guard(self):
        with pytest.raises(ValueError):
            exact_kd_choice_distribution(50, 1, 5)


class TestTotalVariation:
    def test_identical_distributions(self):
        p = {1: 0.4, 2: 0.6}
        assert total_variation_distance(p, dict(p)) == pytest.approx(0.0)

    def test_disjoint_distributions(self):
        assert total_variation_distance({1: 1.0}, {2: 1.0}) == pytest.approx(1.0)

    def test_symmetry(self):
        p = {1: 0.3, 2: 0.7}
        q = {1: 0.6, 3: 0.4}
        assert total_variation_distance(p, q) == pytest.approx(
            total_variation_distance(q, p)
        )


class TestEmpiricalValidation:
    def test_empirical_distribution_normalized(self):
        empirical = empirical_max_load_distribution(4, 2, 3, trials=500, seed=0)
        assert sum(empirical.values()) == pytest.approx(1.0)

    def test_requires_positive_trials(self):
        with pytest.raises(ValueError):
            empirical_max_load_distribution(4, 2, 3, trials=0)

    def test_simulator_matches_exact_distribution(self):
        # The headline validation: Monte-Carlo frequencies converge to the
        # exact law.  3000 trials give ~0.02 accuracy on each atom.
        exact = max_load_distribution(exact_kd_choice_distribution(4, 2, 3))
        empirical = empirical_max_load_distribution(4, 2, 3, trials=3000, seed=1)
        assert total_variation_distance(exact, empirical) < 0.05

    def test_simulator_matches_exact_for_two_choice(self):
        exact = max_load_distribution(exact_kd_choice_distribution(5, 1, 2, n_balls=5))
        empirical = empirical_max_load_distribution(5, 1, 2, trials=3000, seed=2, n_balls=5)
        assert total_variation_distance(exact, empirical) < 0.05

    def test_expected_max_close_to_simulation(self):
        exact = exact_kd_choice_distribution(6, 3, 4, n_balls=6)
        empirical = empirical_max_load_distribution(6, 3, 4, trials=2000, seed=3, n_balls=6)
        empirical_mean = sum(v * p for v, p in empirical.items())
        assert math.isclose(expected_max_load(exact), empirical_mean, abs_tol=0.1)
