"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.command == "table1"
        assert args.trials == 3

    def test_table1_custom_rows(self):
        args = build_parser().parse_args(["table1", "--k", "1", "2", "--d", "3", "5"])
        assert args.k == [1, 2]
        assert args.d == [3, 5]

    def test_every_command_registered(self):
        parser = build_parser()
        for command in [
            "table1", "profile", "regimes", "heavy", "tradeoff",
            "scheduling", "storage", "majorization", "ablation",
            "weighted", "staleness", "churn", "open-question", "exact",
        ]:
            args = parser.parse_args([command] if command != "table1" else ["table1"])
            assert args.command == command or command == "table1"


class TestMainCommands:
    def test_table1_small(self, capsys):
        exit_code = main(
            ["table1", "--n", "256", "--trials", "1", "--k", "1", "--d", "1", "2"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "k = 1" in output

    def test_profile(self, capsys):
        assert main(["profile", "--n", "1024"]) == 0
        output = capsys.readouterr().out
        assert "Figure 1 decomposition" in output

    def test_heavy(self, capsys):
        assert main(["heavy", "--n", "256", "--trials", "1"]) == 0
        assert "mean_gap" in capsys.readouterr().out

    def test_tradeoff(self, capsys):
        assert main(["tradeoff", "--n", "512", "--trials", "1"]) == 0
        assert "single-choice" in capsys.readouterr().out

    def test_scheduling(self, capsys):
        assert main(["scheduling", "--workers", "8", "--jobs", "20"]) == 0
        assert "scheduler" in capsys.readouterr().out

    def test_storage(self, capsys):
        assert main(["storage", "--servers", "32", "--files", "100"]) == 0
        assert "policy" in capsys.readouterr().out

    def test_majorization(self, capsys):
        assert main(["majorization", "--n", "256", "--trials", "3"]) == 0
        assert "claim" in capsys.readouterr().out

    def test_ablation(self, capsys):
        assert main(["ablation", "--n", "256", "--trials", "1"]) == 0
        assert "strict_mean" in capsys.readouterr().out

    def test_weighted(self, capsys):
        assert main(["weighted", "--n", "256", "--trials", "1"]) == 0
        assert "mean_weighted_gap" in capsys.readouterr().out

    def test_staleness(self, capsys):
        assert main(["staleness", "--n", "256", "--trials", "1"]) == 0
        assert "stale_rounds" in capsys.readouterr().out

    def test_churn(self, capsys):
        assert main(["churn", "--n", "64", "--rounds", "64"]) == 0
        assert "steady_gap" in capsys.readouterr().out

    def test_open_question(self, capsys):
        assert main(["open-question", "--n", "256", "--trials", "1"]) == 0
        assert "mean_gap" in capsys.readouterr().out

    def test_exact(self, capsys):
        assert main(["exact", "--trials", "300"]) == 0
        assert "total_variation" in capsys.readouterr().out
