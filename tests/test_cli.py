"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.command == "table1"
        assert args.trials == 3

    def test_table1_custom_rows(self):
        args = build_parser().parse_args(["table1", "--k", "1", "2", "--d", "3", "5"])
        assert args.k == [1, 2]
        assert args.d == [3, 5]

    def test_every_command_registered(self):
        parser = build_parser()
        for command in [
            "table1", "profile", "regimes", "heavy", "tradeoff",
            "scheduling", "cluster", "storage", "majorization", "ablation",
            "weighted", "staleness", "churn", "open-question", "exact",
        ]:
            args = parser.parse_args([command] if command != "table1" else ["table1"])
            assert args.command == command or command == "table1"


class TestMainCommands:
    def test_table1_small(self, capsys):
        exit_code = main(
            ["table1", "--n", "256", "--trials", "1", "--k", "1", "--d", "1", "2"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "k = 1" in output

    def test_profile(self, capsys):
        assert main(["profile", "--n", "1024"]) == 0
        output = capsys.readouterr().out
        assert "Figure 1 decomposition" in output

    def test_heavy(self, capsys):
        assert main(["heavy", "--n", "256", "--trials", "1"]) == 0
        assert "mean_gap" in capsys.readouterr().out

    def test_tradeoff(self, capsys):
        assert main(["tradeoff", "--n", "512", "--trials", "1"]) == 0
        assert "single-choice" in capsys.readouterr().out

    def test_scheduling(self, capsys):
        assert main(["scheduling", "--workers", "8", "--jobs", "20"]) == 0
        assert "scheduler" in capsys.readouterr().out

    def test_storage_spec_run(self, capsys):
        assert main([
            "storage", "--servers", "32", "--files", "100", "--trials", "1",
        ]) == 0
        output = capsys.readouterr().out
        assert "storage_placement" in output
        assert "mean_lookup_cost_mean" in output

    def test_storage_compare(self, capsys):
        assert main(["storage", "--servers", "32", "--files", "100", "--compare"]) == 0
        assert "policy" in capsys.readouterr().out

    def test_cluster_spec_run(self, capsys):
        assert main([
            "cluster", "--workers", "16", "--trace-jobs", "30", "--trials", "1",
        ]) == 0
        output = capsys.readouterr().out
        assert "cluster_scheduling" in output
        assert "p99_response_mean" in output

    def test_cluster_scenario_flags(self, capsys):
        assert main([
            "cluster", "--workers", "16", "--trace-jobs", "30", "--trials", "1",
            "--distribution", "pareto", "--arrival-process", "mmpp",
            "--speed-spread", "0.3",
        ]) == 0
        assert "mean_response_mean" in capsys.readouterr().out

    def test_storage_failure_scenario(self, capsys):
        assert main([
            "storage", "--servers", "32", "--files", "100", "--trials", "1",
            "--fail-fraction", "0.1", "--rebuild",
        ]) == 0
        assert "availability_mean" in capsys.readouterr().out

    def test_storage_forced_vectorized_failure_scenario_is_clean_error(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "storage", "--servers", "32", "--files", "100",
                "--fail-fraction", "0.1", "--engine", "vectorized",
            ])

    def test_majorization(self, capsys):
        assert main(["majorization", "--n", "256", "--trials", "3"]) == 0
        assert "claim" in capsys.readouterr().out

    def test_ablation(self, capsys):
        assert main(["ablation", "--n", "256", "--trials", "1"]) == 0
        assert "strict_mean" in capsys.readouterr().out

    def test_weighted(self, capsys):
        assert main(["weighted", "--n", "256", "--trials", "1"]) == 0
        assert "mean_weighted_gap" in capsys.readouterr().out

    def test_staleness(self, capsys):
        assert main(["staleness", "--n", "256", "--trials", "1"]) == 0
        assert "stale_rounds" in capsys.readouterr().out

    def test_churn(self, capsys):
        assert main(["churn", "--n", "64", "--rounds", "64"]) == 0
        assert "steady_gap" in capsys.readouterr().out

    def test_open_question(self, capsys):
        assert main(["open-question", "--n", "256", "--trials", "1"]) == 0
        assert "mean_gap" in capsys.readouterr().out

    def test_exact(self, capsys):
        assert main(["exact", "--trials", "300"]) == 0
        assert "total_variation" in capsys.readouterr().out


class TestParamParsing:
    """--param KEY=VALUE must fail cleanly and support literals/floats/bools."""

    def _parse(self, *tokens):
        argv = ["simulate", "--scheme", "kd_choice"]
        for token in tokens:
            argv += ["--param", token]
        return dict(build_parser().parse_args(argv).param)

    def test_int_float_bool_and_string_values(self):
        params = self._parse(
            "n_bins=4096", "beta=0.5", "flag=true", "off=False", "dist=pareto"
        )
        assert params == {
            "n_bins": 4096, "beta": 0.5, "flag": True, "off": False,
            "dist": "pareto",
        }
        assert isinstance(params["beta"], float)

    def test_none_and_list_values(self):
        params = self._parse("n_balls=none", "weights=[1, 2, 3]")
        assert params["n_balls"] is None
        assert params["weights"] == [1, 2, 3]

    @pytest.mark.parametrize("token", ["noequals", "=3", "key=", "k=[1,"])
    def test_malformed_token_is_a_clean_argparse_error(self, token, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["simulate", "--scheme", "kd_choice", "--param", token]
            )
        assert excinfo.value.code == 2  # argparse usage error, not a traceback
        err = capsys.readouterr().err
        assert "--param" in err
        # The offending token is named in the message.
        assert token.partition("=")[0] in err or token in err


class TestExecutorAndCacheFlags:
    def test_simulate_accepts_jobs_flag(self, capsys):
        assert main([
            "simulate", "--scheme", "kd_choice",
            "--param", "n_bins=128", "--param", "k=1", "--param", "d=2",
            "--trials", "2", "--jobs", "2",
        ]) == 0
        assert "max_load_mean" in capsys.readouterr().out

    def test_table1_cache_dir_reports_hits_on_second_run(self, tmp_path, capsys):
        argv = [
            "table1", "--n", "64", "--trials", "2",
            "--k", "1", "--d", "2", "4", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0 hits, 4 misses" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "4 hits, 0 misses" in second
        # The grids themselves are identical.
        assert first.splitlines()[:4] == second.splitlines()[:4]

    def test_simulate_cache_dir_round_trip(self, tmp_path, capsys):
        argv = [
            "simulate", "--scheme", "kd_choice",
            "--param", "n_bins=128", "--param", "k=1", "--param", "d=2",
            "--trials", "2", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        assert "2 misses" in capsys.readouterr().out
        assert main(argv) == 0
        assert "2 hits, 0 misses" in capsys.readouterr().out


class TestStreamReplayCommands:
    def test_stream_prints_summary(self, capsys):
        exit_code = main(
            ["stream", "--scheme", "kd_choice", "--param", "n_bins=64",
             "--param", "k=2", "--param", "d=4", "--items", "64", "--seed", "7"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "placed: 64" in out and "loads_sha256:" in out

    def test_stream_record_then_replay_round_trips(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        main(
            ["stream", "--scheme", "kd_choice", "--param", "n_bins=64",
             "--param", "k=2", "--param", "d=4", "--items", "64", "--seed", "7",
             "--churn", "0.2", "--workload-seed", "3",
             "--record", str(trace)]
        )
        streamed = capsys.readouterr().out
        assert main(["replay", "--trace", str(trace)]) == 0
        replayed = capsys.readouterr().out
        # Identical summaries modulo the trailing "recorded:" line.
        assert replayed.rstrip("\n") in streamed

    def test_replay_missing_trace_is_clean_error(self):
        with pytest.raises(SystemExit, match="not found"):
            main(["replay", "--trace", "/nonexistent/trace.jsonl"])

    def test_stream_unknown_scheme_is_clean_error(self):
        with pytest.raises(SystemExit, match="unknown scheme"):
            main(["stream", "--scheme", "nope", "--param", "n_bins=8"])

    def test_stream_offline_scheme_is_clean_error(self):
        with pytest.raises(SystemExit, match="no online"):
            main(
                ["stream", "--scheme", "churn_kd_choice",
                 "--param", "n_bins=8", "--param", "k=1", "--param", "d=2",
                 "--param", "rounds=4", "--items", "8"]
            )

    def test_replay_snapshots_written(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        main(
            ["stream", "--scheme", "two_choice", "--param", "n_bins=32",
             "--items", "32", "--seed", "1", "--record", str(trace)]
        )
        capsys.readouterr()
        main(
            ["replay", "--trace", str(trace), "--snapshot-every", "8",
             "--snapshot-dir", str(tmp_path / "snaps")]
        )
        out = capsys.readouterr().out
        assert "snapshots: 4" in out
        assert len(list((tmp_path / "snaps").glob("snapshot-*.json"))) == 4


class TestCachePruneFlag:
    def test_simulate_cache_max_entries_prints_prune_line(self, capsys, tmp_path):
        argv = [
            "simulate", "--scheme", "kd_choice", "--param", "n_bins=64",
            "--param", "k=2", "--param", "d=4", "--trials", "5",
            "--cache-dir", str(tmp_path), "--cache-max-entries", "2",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache: pruned 3 entries, kept 2" in out

    def test_negative_limit_is_clean_error(self, tmp_path):
        argv = [
            "simulate", "--scheme", "kd_choice", "--param", "n_bins=64",
            "--param", "k=2", "--param", "d=4", "--trials", "2",
            "--cache-dir", str(tmp_path), "--cache-max-entries", "-1",
        ]
        with pytest.raises(SystemExit, match="non-negative"):
            main(argv)


class TestConsoleEntryPoints:
    def test_pyproject_declares_repro_entry(self):
        from pathlib import Path

        pyproject = Path(__file__).parent.parent / "pyproject.toml"
        text = pyproject.read_text(encoding="utf-8")
        assert 'repro = "repro.__main__:main"' in text
        assert 'repro-kd = "repro.cli:main"' in text

    def test_entry_point_target_resolves_and_serves_help(self, capsys):
        # The same smoke `repro --help` performs on an installed package,
        # without requiring the install: resolve the declared target and run.
        from importlib import import_module

        target = import_module("repro.__main__")
        entry = getattr(target, "main")
        with pytest.raises(SystemExit) as excinfo:
            entry(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "stream" in out and "replay" in out

    def test_installed_console_script_if_present(self):
        # When the package is pip-installed (CI does this), the real console
        # script must work end to end; skip gracefully in source checkouts.
        import shutil
        import subprocess

        executable = shutil.which("repro")
        if executable is None:
            pytest.skip("repro console script not installed")
        completed = subprocess.run(
            [executable, "--help"], capture_output=True, text=True
        )
        assert completed.returncode == 0
        assert "replay" in completed.stdout

    def test_cache_max_entries_without_cache_dir_is_clean_error(self, capsys):
        argv = [
            "simulate", "--scheme", "kd_choice", "--param", "n_bins=64",
            "--param", "k=2", "--param", "d=4", "--trials", "2",
            "--cache-max-entries", "2",
        ]
        # Rejected at argument-parse time, before any simulation work runs.
        with pytest.raises(SystemExit):
            main(argv)
        assert "requires --cache-dir" in capsys.readouterr().err


class TestServeLoadgenCommands:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--scheme", "kd_choice"])
        assert args.shards == 4
        assert args.router == "two_choice"
        assert args.mode == "process"
        assert args.port == 0
        assert args.max_delay_ms == 2.0

    def test_serve_requires_scheme_xor_restore(self, capsys):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["serve"])
        with pytest.raises(SystemExit, match="exactly one"):
            main(["serve", "--scheme", "kd_choice", "--restore", "x.json"])

    def test_serve_unknown_router_is_clean_error(self):
        with pytest.raises(SystemExit, match="two_choice"):
            main([
                "serve", "--scheme", "kd_choice", "--param", "n_bins=64",
                "--param", "k=2", "--param", "d=4", "--shards", "1",
                "--mode", "thread", "--router", "bogus",
            ])

    def test_serve_unservable_scheme_is_clean_error(self):
        # A substrate scheme has no n_balls/n_bins, so no pool capacity.
        with pytest.raises(SystemExit, match="capacity"):
            main([
                "serve", "--scheme", "cluster_scheduling", "--shards", "1",
                "--mode", "thread",
            ])

    def test_serve_missing_manifest_is_clean_error(self, tmp_path):
        with pytest.raises((SystemExit, FileNotFoundError)):
            main(["serve", "--restore", str(tmp_path / "absent.json")])

    def test_loadgen_refused_connection_is_clean_error(self):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        with pytest.raises(SystemExit, match="no server listening"):
            main(["loadgen", "--port", str(port), "--items", "1"])
