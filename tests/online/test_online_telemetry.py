"""LoadTelemetry: O(1) updates, lazy max, sampling cadence, bounded ring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import SchemeSpec
from repro.online import LoadTelemetry, OnlineAllocator


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCounters:
    def test_place_and_remove_counts(self):
        telemetry = LoadTelemetry(sample_every=1000)
        loads = np.zeros(4, dtype=np.int64)
        loads[1] = 3
        telemetry.record_place(1, 3)
        telemetry.record_place(2, 1)
        telemetry.record_remove(1, 3)
        assert telemetry.placements == 2
        assert telemetry.removals == 1

    def test_max_tracks_increments_incrementally(self):
        telemetry = LoadTelemetry()
        loads = np.array([0, 2, 1], dtype=np.int64)
        telemetry.record_place(1, 2)
        assert telemetry.max_load(loads) == 2

    def test_max_recomputes_after_removal_of_the_maximum(self):
        telemetry = LoadTelemetry()
        loads = np.array([1, 1, 0], dtype=np.int64)
        telemetry.record_place(0, 2)  # max believed 2
        telemetry.record_remove(0, 2)  # the max ball left
        assert telemetry.max_load(loads) == 1  # lazy recompute from loads

    def test_block_ingestion_marks_max_dirty(self):
        telemetry = LoadTelemetry()
        loads = np.array([5, 1], dtype=np.int64)
        telemetry.record_block(6)
        assert telemetry.placements == 6
        assert telemetry.max_load(loads) == 5


class TestSampling:
    def test_cadence_and_ring_capacity(self):
        clock = FakeClock()
        telemetry = LoadTelemetry(sample_every=10, capacity=3, clock=clock)
        loads = np.zeros(8, dtype=np.int64)
        for event in range(100):
            clock.now += 0.001
            telemetry.record_place(event % 8, 1)
            telemetry.maybe_sample(loads)
        assert telemetry.samples_taken == 10
        assert len(telemetry.history()) == 3  # ring keeps the newest 3
        assert telemetry.latest().index == 9

    def test_sample_contents(self):
        clock = FakeClock()
        telemetry = LoadTelemetry(sample_every=4, clock=clock)
        loads = np.array([0, 1, 2, 1], dtype=np.int64)
        for bin_index in (1, 2, 2, 3):
            telemetry.record_place(bin_index, int(loads[bin_index]))
        clock.now = 2.0
        sample = telemetry.maybe_sample(loads)
        assert sample is not None
        assert sample.placements == 4
        assert sample.max_load == 2
        assert sample.mean_load == pytest.approx(1.0)
        assert sample.gap == pytest.approx(1.0)
        assert sample.percentiles[50] == pytest.approx(1.0)
        assert sample.placements_per_sec == pytest.approx(2.0)
        assert sample.to_dict()["max_load"] == 2

    def test_not_due_returns_none(self):
        telemetry = LoadTelemetry(sample_every=100)
        telemetry.record_place(0, 1)
        assert telemetry.maybe_sample(np.zeros(2, dtype=np.int64)) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadTelemetry(sample_every=0)
        with pytest.raises(ValueError):
            LoadTelemetry(capacity=0)


class TestAllocatorIntegration:
    def test_allocator_samples_on_cadence(self):
        spec = SchemeSpec(
            scheme="kd_choice",
            params={"n_bins": 64, "k": 2, "d": 4, "n_balls": 1000},
            seed=0,
        )
        telemetry = LoadTelemetry(sample_every=100)
        allocator = OnlineAllocator(spec, telemetry=telemetry)
        # Sampling happens at event-recording points: chunked ingestion
        # samples once per due chunk (a single bulk call samples once).
        for _ in range(10):
            allocator.place_batch(100)
        assert telemetry.samples_taken == 10
        latest = telemetry.latest()
        assert latest.placements == 1000
        assert latest.max_load == int(allocator.loads.max())

    def test_gap_property_matches_loads(self):
        spec = SchemeSpec(
            scheme="single_choice", params={"n_bins": 16, "n_balls": 64}, seed=3
        )
        allocator = OnlineAllocator(spec)
        allocator.place_batch(64)
        assert allocator.gap == pytest.approx(
            allocator.loads.max() - 64 / 16
        )
