"""LoadTelemetry: O(1) updates, lazy max, sampling cadence, bounded ring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import SchemeSpec
from repro.online import LoadTelemetry, OnlineAllocator


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCounters:
    def test_place_and_remove_counts(self):
        telemetry = LoadTelemetry(sample_every=1000)
        loads = np.zeros(4, dtype=np.int64)
        loads[1] = 3
        telemetry.record_place(1, 3)
        telemetry.record_place(2, 1)
        telemetry.record_remove(1, 3)
        assert telemetry.placements == 2
        assert telemetry.removals == 1

    def test_max_tracks_increments_incrementally(self):
        telemetry = LoadTelemetry()
        loads = np.array([0, 2, 1], dtype=np.int64)
        telemetry.record_place(1, 2)
        assert telemetry.max_load(loads) == 2

    def test_max_recomputes_after_removal_of_the_maximum(self):
        telemetry = LoadTelemetry()
        loads = np.array([1, 1, 0], dtype=np.int64)
        telemetry.record_place(0, 2)  # max believed 2
        telemetry.record_remove(0, 2)  # the max ball left
        assert telemetry.max_load(loads) == 1  # lazy recompute from loads

    def test_block_ingestion_marks_max_dirty(self):
        telemetry = LoadTelemetry()
        loads = np.array([5, 1], dtype=np.int64)
        telemetry.record_block(6)
        assert telemetry.placements == 6
        assert telemetry.max_load(loads) == 5


class TestSampling:
    def test_cadence_and_ring_capacity(self):
        clock = FakeClock()
        telemetry = LoadTelemetry(sample_every=10, capacity=3, clock=clock)
        loads = np.zeros(8, dtype=np.int64)
        for event in range(100):
            clock.now += 0.001
            telemetry.record_place(event % 8, 1)
            telemetry.maybe_sample(loads)
        assert telemetry.samples_taken == 10
        assert len(telemetry.history()) == 3  # ring keeps the newest 3
        assert telemetry.latest().index == 9

    def test_sample_contents(self):
        clock = FakeClock()
        telemetry = LoadTelemetry(sample_every=4, clock=clock)
        loads = np.array([0, 1, 2, 1], dtype=np.int64)
        for bin_index in (1, 2, 2, 3):
            telemetry.record_place(bin_index, int(loads[bin_index]))
        clock.now = 2.0
        sample = telemetry.maybe_sample(loads)
        assert sample is not None
        assert sample.placements == 4
        assert sample.max_load == 2
        assert sample.mean_load == pytest.approx(1.0)
        assert sample.gap == pytest.approx(1.0)
        assert sample.percentiles[50] == pytest.approx(1.0)
        assert sample.placements_per_sec == pytest.approx(2.0)
        assert sample.to_dict()["max_load"] == 2

    def test_not_due_returns_none(self):
        telemetry = LoadTelemetry(sample_every=100)
        telemetry.record_place(0, 1)
        assert telemetry.maybe_sample(np.zeros(2, dtype=np.int64)) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadTelemetry(sample_every=0)
        with pytest.raises(ValueError):
            LoadTelemetry(capacity=0)


class TestAllocatorIntegration:
    def test_allocator_samples_on_cadence(self):
        spec = SchemeSpec(
            scheme="kd_choice",
            params={"n_bins": 64, "k": 2, "d": 4, "n_balls": 1000},
            seed=0,
        )
        telemetry = LoadTelemetry(sample_every=100)
        allocator = OnlineAllocator(spec, telemetry=telemetry)
        # Sampling happens at event-recording points: chunked ingestion
        # samples once per due chunk (a single bulk call samples once).
        for _ in range(10):
            allocator.place_batch(100)
        assert telemetry.samples_taken == 10
        latest = telemetry.latest()
        assert latest.placements == 1000
        assert latest.max_load == int(allocator.loads.max())

    def test_gap_property_matches_loads(self):
        spec = SchemeSpec(
            scheme="single_choice", params={"n_bins": 16, "n_balls": 64}, seed=3
        )
        allocator = OnlineAllocator(spec)
        allocator.place_batch(64)
        assert allocator.gap == pytest.approx(
            allocator.loads.max() - 64 / 16
        )


class TestRestoreAnchors:
    """Snapshot/restore must carry the wall-clock anchors, not just counts.

    The historical bug: ``restore_counters`` reinstated the event counters
    but left ``_start``/``_last_sample_time`` at the new telemetry object's
    construction instants, so a restored stream's samples restarted
    ``wall_time`` at zero and billed the snapshot/restore downtime to the
    first sample's ``placements_per_sec``.
    """

    def _allocator(self, clock, sample_every=10):
        telemetry = LoadTelemetry(sample_every=sample_every, clock=clock)
        spec = SchemeSpec(
            scheme="two_choice", params={"n_bins": 32, "n_balls": 400}, seed=7
        )
        return OnlineAllocator(spec, telemetry=telemetry)

    def test_wall_time_resumes_across_restore(self):
        clock = FakeClock()
        allocator = self._allocator(clock)
        clock.now = 4.0
        allocator.place_batch(25)  # samples at events 10, 20
        snapshot = allocator.snapshot()
        assert snapshot["telemetry"]["wall_time"] == pytest.approx(4.0)

        late_clock = FakeClock()
        late_clock.now = 1000.0  # restore happens much later, elsewhere
        restored = OnlineAllocator.restore(
            snapshot, telemetry=LoadTelemetry(sample_every=10, clock=late_clock)
        )
        late_clock.now += 2.0
        restored.place_batch(10)
        sample = restored.telemetry.latest()
        # 4.0s elapsed before the snapshot + 2.0s after the restore; the
        # 996.0s gap between them is downtime, not stream time.
        assert sample.wall_time == pytest.approx(6.0)

    def test_rate_window_excludes_restore_downtime(self):
        clock = FakeClock()
        allocator = self._allocator(clock)
        clock.now = 1.0
        allocator.place_batch(25)
        snapshot = allocator.snapshot()

        late_clock = FakeClock()
        late_clock.now = 500.0
        restored = OnlineAllocator.restore(
            snapshot, telemetry=LoadTelemetry(sample_every=10, clock=late_clock)
        )
        late_clock.now += 2.0
        restored.place_batch(10)
        sample = restored.telemetry.latest()
        # 10 placements over the 2.0s since the restore — not over the
        # 501.0s a naive (now - _last_sample_time) would report.
        assert sample.placements_per_sec == pytest.approx(10 / 2.0)

    def test_restored_stream_samples_at_the_same_event_counts(self):
        # Same event grouping on both sides (place_batch samples at most
        # once per call); the only difference is the snapshot/restore cut.
        clock = FakeClock()
        unbroken = self._allocator(clock)
        unbroken.place_batch(23)
        unbroken.place_batch(55 - 23)

        first = self._allocator(FakeClock())
        first.place_batch(23)  # mid-cadence cut: 3 events past sample 2
        restored = OnlineAllocator.restore(
            first.snapshot(),
            telemetry=LoadTelemetry(sample_every=10, clock=FakeClock()),
        )
        restored.place_batch(55 - 23)
        assert (
            restored.telemetry.samples_taken == unbroken.telemetry.samples_taken
        )
        # The ring is not persisted, but the post-restore samples must land
        # at the same event counts (and sample indices) as the unbroken run.
        post_cut = [
            (s.index, s.events)
            for s in unbroken.telemetry.history()
            if s.events > 23
        ]
        assert [
            (s.index, s.events) for s in restored.telemetry.history()
        ] == post_cut

    def test_legacy_snapshot_without_wall_time_restores_at_zero(self):
        telemetry = LoadTelemetry(clock=FakeClock())
        telemetry.restore_counters(
            {"placements": 5, "removals": 1, "samples_taken": 0,
             "events_since_sample": 6}
        )
        assert telemetry.placements == 5
        assert telemetry.counters()["wall_time"] == pytest.approx(0.0)


class TestTenantCounters:
    """Per-tenant attribution: counters, fairness, snapshot round-trip."""

    def _telemetry_with_two_tenants(self) -> LoadTelemetry:
        telemetry = LoadTelemetry()
        telemetry.record_tenant_place("a", 0)
        telemetry.record_tenant_place("a", 0)
        telemetry.record_tenant_place("a", 3)
        telemetry.record_tenant_place("b", 1)
        telemetry.record_tenant_remove("a", 0)
        return telemetry

    def test_summary_tracks_placements_removals_live_and_max_load(self):
        summary = self._telemetry_with_two_tenants().tenant_summary()
        assert summary == {
            "a": {"placements": 3, "removals": 1, "live": 2, "max_load": 1},
            "b": {"placements": 1, "removals": 0, "live": 1, "max_load": 1},
        }

    def test_no_tenants_means_no_tenant_section(self):
        telemetry = LoadTelemetry()
        telemetry.record_place(0, 1)
        assert not telemetry.has_tenants
        assert "tenants" not in telemetry.counters()
        assert telemetry.tenant_fairness() == 1.0

    def test_fairness_is_jains_index_over_live_balls(self):
        telemetry = LoadTelemetry()
        for _ in range(3):
            telemetry.record_tenant_place(0, 0)
        telemetry.record_tenant_place(1, 1)
        # lives = [3, 1]: (3+1)^2 / (2 * (9+1)) = 16/20
        assert telemetry.tenant_fairness() == pytest.approx(0.8)
        telemetry.record_tenant_place(1, 2)
        telemetry.record_tenant_place(1, 3)
        assert telemetry.tenant_fairness() == pytest.approx(1.0)

    def test_one_tenant_holding_everything_is_the_lower_bound(self):
        telemetry = LoadTelemetry()
        telemetry.record_tenant_place("hog", 0)
        telemetry.record_tenant_place("idle", 1)
        telemetry.record_tenant_remove("idle", 1)
        assert telemetry.tenant_fairness() == pytest.approx(0.5)

    def test_counters_round_trip_through_restore(self):
        telemetry = self._telemetry_with_two_tenants()
        snapshot = telemetry.counters()
        restored = LoadTelemetry()
        restored.restore_counters(snapshot)
        assert restored.tenant_summary() == telemetry.tenant_summary()
        assert restored.tenant_fairness() == telemetry.tenant_fairness()
        # The restored instance keeps attributing correctly.
        restored.record_tenant_remove("a", 3)
        assert restored.tenant_summary()["a"]["live"] == 1

    def test_labels_normalize_to_strings(self):
        telemetry = LoadTelemetry()
        telemetry.record_tenant_place(7, 0)
        telemetry.record_tenant_remove("7", 0)
        assert telemetry.tenant_summary() == {
            "7": {"placements": 1, "removals": 1, "live": 0, "max_load": 0},
        }
