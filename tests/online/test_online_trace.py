"""Trace format: byte-stable record/replay, validation, workload bridge."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import SchemeSpec
from repro.online import (
    OnlineAllocator,
    TraceError,
    TraceHeader,
    TraceWriter,
    generate_workload_events,
    read_trace,
    record_workload,
    replay_trace,
    stream_workload,
)

SPEC = SchemeSpec(
    scheme="kd_choice", params={"n_bins": 64, "k": 2, "d": 4}, seed=7
)


class TestFormat:
    def test_record_is_byte_deterministic(self, tmp_path):
        for target in ("a.jsonl", "b.jsonl"):
            record_workload(
                tmp_path / target, SPEC, items=64, arrival_process="mmpp",
                arrival_rate=500.0, churn=0.2, workload_seed=11,
            )
        assert (tmp_path / "a.jsonl").read_bytes() == (
            tmp_path / "b.jsonl"
        ).read_bytes()

    def test_replay_rerecord_is_byte_identical(self, tmp_path):
        source = tmp_path / "in.jsonl"
        record_workload(source, SPEC, items=64, churn=0.15, workload_seed=4)
        replay_trace(source, engine="scalar", record_out=tmp_path / "out.jsonl")
        assert source.read_bytes() == (tmp_path / "out.jsonl").read_bytes()

    def test_header_roundtrip_and_versioning(self, tmp_path):
        header = TraceHeader(scheme="kd_choice", params={"n_bins": 8},
                             seed=1, events=2)
        parsed = TraceHeader.from_dict(header.to_dict())
        assert parsed == header
        bad = header.to_dict()
        bad["version"] = 99
        with pytest.raises(TraceError, match="version"):
            TraceHeader.from_dict(bad)
        bad["format"] = "nope"
        with pytest.raises(TraceError, match="format|not a"):
            TraceHeader.from_dict(bad)

    def test_malformed_lines_name_their_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        header = TraceHeader(scheme="kd_choice", params={"n_bins": 8}, seed=1)
        path.write_text(
            json.dumps(header.to_dict()) + "\n" + '{"op":"teleport"}\n'
        )
        with pytest.raises(TraceError, match="line 2.*teleport"):
            read_trace(path)
        path.write_text(json.dumps(header.to_dict()) + "\nnot json\n")
        with pytest.raises(TraceError, match="line 2"):
            read_trace(path)
        path.write_text("")
        with pytest.raises(TraceError, match="empty"):
            read_trace(path)

    def test_remove_requires_item(self, tmp_path):
        header = TraceHeader(scheme="kd_choice", params={"n_bins": 8}, seed=1)
        with TraceWriter(tmp_path / "t.jsonl", header) as writer:
            with pytest.raises(TraceError, match="item"):
                writer.write_event({"op": "remove"})


class TestWorkloadBridge:
    def test_arrival_stamps_are_monotone(self):
        events = generate_workload_events(
            50, arrival_process="poisson", arrival_rate=100.0, seed=3
        )
        times = [event["t"] for event in events]
        assert times == sorted(times)
        assert len(events) == 50

    def test_mmpp_stamps_and_churn_interleave(self):
        events = generate_workload_events(
            200, arrival_process="mmpp", arrival_rate=100.0, churn=0.3, seed=3
        )
        removes = [event for event in events if event["op"] == "remove"]
        assert removes, "churn=0.3 over 200 places should remove something"
        live = set()
        for event in events:
            if event["op"] == "place":
                live.add(event["item"])
            else:
                assert event["item"] in live  # only live items are removed
                live.remove(event["item"])

    def test_validation(self):
        with pytest.raises(ValueError, match="churn"):
            generate_workload_events(10, churn=1.5)
        with pytest.raises(ValueError, match="non-negative"):
            generate_workload_events(-1)


class TestReplay:
    def test_identical_across_engines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_workload(
            path, SPEC, items=64, arrival_process="mmpp", churn=0.2,
            workload_seed=11,
        )
        results = {
            engine: replay_trace(path, engine=engine)
            for engine in ("scalar", "auto")
        }
        assert results["scalar"].stats == results["auto"].stats

    def test_stream_then_replay_reproduces(self, tmp_path):
        path = tmp_path / "t.jsonl"
        live = stream_workload(
            SPEC, items=64, churn=0.1, workload_seed=5, record=path
        )
        replayed = replay_trace(path, engine="scalar")
        assert live.stats == replayed.stats
        assert live.places == replayed.places
        assert live.removes == replayed.removes

    def test_replay_pins_n_balls_to_place_count(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_workload(path, SPEC, items=30, workload_seed=1)
        summary = replay_trace(path)
        assert summary.spec.params["n_balls"] == 30
        assert summary.stats["placed"] == 30

    def test_snapshot_every_writes_restorable_snapshots(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_workload(path, SPEC, items=64, workload_seed=2)
        summary = replay_trace(
            path, engine="scalar", snapshot_every=16,
            snapshot_dir=tmp_path / "snaps",
        )
        assert summary.snapshots_taken == 4
        assert len(summary.snapshot_paths) == 4
        with open(summary.snapshot_paths[1], "r", encoding="utf-8") as handle:
            middle = json.load(handle)
        restored = OnlineAllocator.restore(middle)
        assert restored.placed == 32
        # The restored allocator finishes the stream exactly like the replay.
        restored.place_batch(32)
        assert restored.summary()["loads_sha256"] == summary.stats["loads_sha256"]

    def test_format_text_is_stable(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_workload(path, SPEC, items=16, workload_seed=0)
        first = replay_trace(path).format_text()
        second = replay_trace(path).format_text()
        assert first == second
        assert "loads_sha256" in first and "events: 16" in first

    def test_seed_for_seed_matches_batch_engine(self, tmp_path):
        # A pure-placement trace is exactly the batch workload, so replay
        # must reproduce simulate() bit for bit.
        from repro.api import simulate

        path = tmp_path / "t.jsonl"
        spec = SPEC.with_params(n_balls=64)
        record_workload(path, spec, items=64, workload_seed=9)
        summary = replay_trace(path, engine="auto")
        batch = simulate(spec)
        assert summary.stats["max_load"] == batch.max_load
        assert summary.stats["messages"] == batch.messages
        import hashlib

        assert summary.stats["loads_sha256"] == hashlib.sha256(
            np.ascontiguousarray(batch.loads).tobytes()
        ).hexdigest()


class TestEngineIdentityRegressions:
    def test_telemetry_sample_count_is_engine_independent(self):
        # Batched replays chunk long place-runs at the telemetry cadence, so
        # the summary's telemetry_samples matches the per-event path even
        # when a run spans many sample intervals.
        from repro.online import LoadTelemetry, run_events

        events = generate_workload_events(10_000, seed=1)
        results = {}
        for engine in ("scalar", "auto"):
            spec = SchemeSpec(
                scheme="kd_choice",
                params={"n_bins": 10_000, "k": 4, "d": 8, "n_balls": 10_000},
                seed=0,
                engine=engine,
            )
            results[engine] = run_events(
                spec, events, telemetry=LoadTelemetry(sample_every=4096)
            )
        assert results["scalar"].stats == results["auto"].stats
        assert results["scalar"].stats["telemetry_samples"] == 2

    def test_stale_churn_workload_streams_and_replays(self, tmp_path):
        # A churned item may still be pending in the current stale epoch;
        # its removal must cancel the pending placement, not abort the run.
        spec = SchemeSpec(
            scheme="stale_kd_choice",
            params={"n_bins": 64, "k": 2, "d": 4, "stale_rounds": 8},
            seed=3,
        )
        path = tmp_path / "stale.jsonl"
        live = stream_workload(
            spec, items=64, churn=0.5, workload_seed=1, record=path
        )
        assert live.removes > 0
        for engine in ("scalar", "auto"):
            assert replay_trace(path, engine=engine).stats == live.stats

    def test_churn_free_replay_snapshots_are_engine_independent(self, tmp_path):
        # A churn-free replay must not register item ids on the scalar path
        # (no event will ever look one up): snapshots would otherwise carry
        # an O(n) item map on one engine and none on the other.
        path = tmp_path / "t.jsonl"
        record_workload(path, SPEC, items=64, workload_seed=2)
        snapshots = {}
        for engine in ("scalar", "auto"):
            directory = tmp_path / f"snaps-{engine}"
            replay_trace(
                path, engine=engine, snapshot_every=32, snapshot_dir=directory
            )
            with open(directory / "snapshot-00000032.json") as handle:
                snapshots[engine] = json.load(handle)
        assert snapshots["scalar"]["items"] == []
        assert snapshots["scalar"]["items"] == snapshots["auto"]["items"]

    def test_explicit_zero_n_balls_means_an_empty_stream(self, tmp_path):
        spec = SchemeSpec(
            scheme="single_choice", params={"n_bins": 8, "n_balls": 0}, seed=0
        )
        path = tmp_path / "empty.jsonl"
        summary = stream_workload(spec, record=path)
        assert summary.events == 0 and summary.stats["placed"] == 0
        assert replay_trace(path).stats["placed"] == 0
