"""Snapshot files on disk: atomic writes, digests, torn-file rejection."""

from __future__ import annotations

import json
import os

import pytest

from repro.api import SchemeSpec
from repro.online import (
    OnlineAllocator,
    OnlineAllocatorError,
    load_snapshot,
    snapshot_digest,
    stream_workload,
    write_snapshot,
)

SPEC = SchemeSpec(
    scheme="kd_choice", params={"n_bins": 32, "k": 2, "d": 4, "n_balls": 300},
    seed=5,
)


def make_allocator(places=120):
    allocator = OnlineAllocator(SPEC)
    allocator.place_batch(places)
    return allocator


class TestWriteSnapshot:
    def test_roundtrip_and_no_tmp_residue(self, tmp_path):
        path = tmp_path / "state.json"
        snapshot = make_allocator().snapshot()
        write_snapshot(path, snapshot)
        assert load_snapshot(path) == json.loads(json.dumps(snapshot))
        assert list(tmp_path.iterdir()) == [path]  # the .tmp is gone

    def test_overwrites_atomically(self, tmp_path):
        path = tmp_path / "state.json"
        allocator = make_allocator()
        write_snapshot(path, allocator.snapshot())
        allocator.place_batch(50)
        write_snapshot(path, allocator.snapshot())
        restored = OnlineAllocator.restore(load_snapshot(path))
        assert restored.placed == 170

    def test_accepts_path_likes(self, tmp_path):
        path = os.path.join(str(tmp_path), "state.json")
        write_snapshot(path, make_allocator().snapshot())
        assert load_snapshot(path)["format"]


class TestTruncatedSnapshotRejection:
    def test_truncated_file_raises_a_clean_error(self, tmp_path):
        """Regression: a torn snapshot must fail restore() loudly, early."""
        path = tmp_path / "state.json"
        write_snapshot(path, make_allocator().snapshot())
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) // 3], encoding="utf-8")
        with pytest.raises(
            OnlineAllocatorError, match="truncated or corrupt"
        ) as excinfo:
            OnlineAllocator.restore(load_snapshot(path))
        assert str(path) in str(excinfo.value)  # the error names the file

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text("", encoding="utf-8")
        with pytest.raises(OnlineAllocatorError, match="truncated or corrupt"):
            load_snapshot(path)

    def test_non_document_json_rejected(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(OnlineAllocatorError, match="snapshot document"):
            load_snapshot(path)

    def test_missing_file_is_a_plain_filenotfound(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_snapshot(tmp_path / "absent.json")


class TestDigest:
    def test_digest_is_canonical(self):
        snapshot = make_allocator().snapshot()
        # Key order must not matter — the digest canonicalizes.
        reordered = json.loads(
            json.dumps(snapshot, sort_keys=False), object_hook=dict
        )
        assert snapshot_digest(snapshot) == snapshot_digest(reordered)

    def test_allocator_digest_matches_module_function(self):
        allocator = make_allocator()
        assert allocator.digest() == snapshot_digest(allocator.snapshot())

    def test_digest_excludes_the_telemetry_wall_clock_anchor(self):
        # wall_time advances between otherwise-identical snapshots; the
        # digest identifies stream state, so it must not hash it.
        snapshot = make_allocator().snapshot()
        later = json.loads(json.dumps(snapshot))
        later["telemetry"]["wall_time"] = (
            later["telemetry"].get("wall_time", 0.0) + 123.0
        )
        assert snapshot_digest(later) == snapshot_digest(snapshot)

    def test_digest_changes_with_state(self):
        allocator = make_allocator()
        before = allocator.digest()
        allocator.place()
        assert allocator.digest() != before


class TestStreamSnapshotsAreAtomic:
    def test_stream_workload_snapshots_leave_no_tmp_files(self, tmp_path):
        snapshot_dir = tmp_path / "snaps"
        summary = stream_workload(
            SPEC, items=200, snapshot_every=64, snapshot_dir=str(snapshot_dir),
        )
        names = sorted(p.name for p in snapshot_dir.iterdir())
        assert len(names) == summary.snapshots_taken > 0
        assert not any(name.endswith(".tmp") for name in names)
        # Every capture restores (none is torn).
        for name in names:
            restored = OnlineAllocator.restore(
                load_snapshot(snapshot_dir / name)
            )
            assert restored.placed > 0
