"""Streaming-vs-batch equivalence harness for the online allocator.

The contract locked down here is the one :mod:`repro.online` advertises:
for every scheme registered ``online=``, streaming the spec's ``n_balls``
items — one :meth:`place` at a time, through chunked :meth:`place_batch`
calls, or any mix — produces loads, message/round accounting **and
generator state** bit-for-bit identical to ``simulate()`` of the same spec.

Mirroring ``tests/core/test_engine_equivalence.py``, two layers of coverage:

* Hypothesis explores the parameter space adaptively (tiny bin counts
  maximize batch-kernel conflicts, ``k == d`` hits the degenerate
  shortcuts, ``n_balls % k != 0`` exercises partial tail rounds),
* a deterministic randomized-seed parametrization keeps the coverage
  without the dependency.

A registry dichotomy test pins the capability surface: every scheme either
streams with full parity or rejects with the registry's single-sourced
reason.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.api import (
    REGISTRY,
    SchemeSpec,
    get_scheme,
    online_unsupported_reason,
    simulate,
)
from repro.online import OnlineAllocator, OnlineAllocatorError

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without the dep
    HAVE_HYPOTHESIS = False

MASTER_SEED = 20260728

#: Ingestion modes every check runs: the scalar unit loop, chunked batches
#: (odd sizes, forcing pending-queue splits), and an alternating mix.
MODES = ("place", "batch", "mixed")


def _stream(spec: SchemeSpec, n_items: int, mode: str) -> OnlineAllocator:
    allocator = OnlineAllocator(spec)
    if mode == "place":
        for _ in range(n_items):
            allocator.place()
    elif mode == "batch":
        remaining = n_items
        for size in (1, 3, 7, 61, 499, 4096) * (n_items // 1 + 1):
            if not remaining:
                break
            take = min(size, remaining)
            allocator.place_batch(take)
            remaining -= take
    else:  # mixed
        remaining = n_items
        toggle = True
        while remaining:
            if toggle and remaining >= 13:
                allocator.place_batch(13)
                remaining -= 13
            else:
                allocator.place()
                remaining -= 1
            toggle = not toggle
    return allocator


def check_scheme(scheme: str, params: dict, seed: int, modes=MODES) -> None:
    """Stream vs batch: loads, accounting and RNG stream must coincide."""
    n_items = params.get("n_balls", params["n_bins"])
    reference_rng = np.random.default_rng(seed)
    batch = simulate(
        SchemeSpec(scheme=scheme, params=params, rng=reference_rng,
                   engine="scalar")
    )
    reference_state = reference_rng.bit_generator.state
    for mode in modes:
        stream_rng = np.random.default_rng(seed)
        engine = "scalar" if mode == "place" else "auto"
        allocator = _stream(
            SchemeSpec(scheme=scheme, params=params, rng=stream_rng,
                       engine=engine),
            n_items,
            mode,
        )
        assert np.array_equal(allocator.loads, batch.loads), (scheme, mode)
        assert allocator.stepper.messages == batch.messages, (scheme, mode)
        assert allocator.stepper.rounds == batch.rounds, (scheme, mode)
        assert allocator.placed == n_items
        assert (
            stream_rng.bit_generator.state == reference_state
        ), f"{scheme}/{mode}: stream consumed the RNG differently"


def check_ball_order(scheme: str, params: dict, seed: int) -> None:
    """place() and place_batch() must emit identical destination sequences."""
    n_items = params.get("n_balls", params["n_bins"])
    scalar = OnlineAllocator(
        SchemeSpec(scheme=scheme, params=params, seed=seed, engine="scalar")
    )
    batch = OnlineAllocator(SchemeSpec(scheme=scheme, params=params, seed=seed))
    assert [scalar.place() for _ in range(n_items)] == list(
        batch.place_batch(n_items)
    ), scheme


# ----------------------------------------------------------------------
# Randomized-seed parametrization (always runs, Hypothesis or not)
# ----------------------------------------------------------------------
def _cases(family: str, count: int = 10):
    source = random.Random(f"{MASTER_SEED}-online-{family}")
    cases = []
    for _ in range(count):
        n_bins = source.randint(8, 900)
        d = source.randint(1, min(10, n_bins))
        k = source.randint(1, d)
        cases.append(
            {
                "n_bins": n_bins,
                "k": k,
                "d": d,
                "n_balls": source.randint(1, 3 * n_bins),
                "seed": source.randint(0, 2**31),
                "pick": source.randint(0, 1000),
            }
        )
    return cases


def _ids(cases):
    return [f"n{c['n_bins']}-k{c['k']}-d{c['d']}-m{c['n_balls']}" for c in cases]


_KD = _cases("kd")
_WEIGHTED = _cases("weighted")
_STALE = _cases("stale")
_BASELINE = _cases("baseline")
_ADAPTIVE = _cases("adaptive")


class TestRandomizedStreamEquivalence:
    @pytest.mark.parametrize("case", _KD, ids=_ids(_KD))
    def test_kd_choice(self, case):
        check_scheme(
            "kd_choice",
            {"n_bins": case["n_bins"], "k": case["k"], "d": case["d"],
             "n_balls": case["n_balls"]},
            case["seed"],
        )

    @pytest.mark.parametrize("case", _KD[:4], ids=_ids(_KD[:4]))
    def test_greedy_kd_choice(self, case):
        check_scheme(
            "greedy_kd_choice",
            {"n_bins": case["n_bins"], "k": case["k"], "d": case["d"],
             "n_balls": case["n_balls"]},
            case["seed"],
        )

    @pytest.mark.parametrize("case", _KD, ids=_ids(_KD))
    def test_serialized_kd_choice(self, case):
        # n_balls must be a multiple of k (the paper assumes k | n).
        n_balls = max(case["n_balls"] - case["n_balls"] % case["k"], case["k"])
        sigma = ("identity", "reversed", "random")[case["pick"] % 3]
        check_scheme(
            "serialized_kd_choice",
            {"n_bins": case["n_bins"], "k": case["k"], "d": case["d"],
             "n_balls": n_balls, "sigma": sigma},
            case["seed"],
        )

    def test_serialized_ball_order_identical_across_ingestion(self):
        check_ball_order(
            "serialized_kd_choice",
            {"n_bins": 32, "k": 4, "d": 8, "n_balls": 400, "sigma": "random"},
            seed=17,
        )

    @pytest.mark.parametrize("case", _WEIGHTED, ids=_ids(_WEIGHTED))
    def test_weighted(self, case):
        weights = ("constant", "exponential", "pareto")[case["pick"] % 3]
        check_scheme(
            "weighted_kd_choice",
            {"n_bins": case["n_bins"], "k": case["k"], "d": case["d"],
             "n_balls": case["n_balls"], "weights": weights},
            case["seed"],
        )

    @pytest.mark.parametrize("case", _WEIGHTED[:4], ids=_ids(_WEIGHTED[:4]))
    def test_weighted_float_loads(self, case):
        params = {"n_bins": case["n_bins"], "k": case["k"], "d": case["d"],
                  "n_balls": case["n_balls"]}
        rng = np.random.default_rng(case["seed"])
        batch = simulate(
            SchemeSpec(scheme="weighted_kd_choice", params=params, rng=rng,
                       engine="scalar")
        )
        allocator = _stream(
            SchemeSpec(scheme="weighted_kd_choice", params=params,
                       seed=case["seed"]),
            case["n_balls"],
            "batch",
        )
        assert np.array_equal(
            allocator.stepper.weighted_loads, batch.extra["weighted_loads"]
        ), "weighted (float) loads must match bit for bit"

    @pytest.mark.parametrize("case", _STALE, ids=_ids(_STALE))
    def test_stale(self, case):
        stale_rounds = (1, 2, 8, 64)[case["pick"] % 4]
        check_scheme(
            "stale_kd_choice",
            {"n_bins": case["n_bins"], "k": case["k"], "d": case["d"],
             "n_balls": case["n_balls"], "stale_rounds": stale_rounds},
            case["seed"],
        )

    @pytest.mark.parametrize("case", _BASELINE, ids=_ids(_BASELINE))
    def test_baselines(self, case):
        base = {"n_bins": case["n_bins"], "n_balls": case["n_balls"]}
        check_scheme("d_choice", {**base, "d": case["d"]}, case["seed"])
        check_scheme("two_choice", base, case["seed"] + 1)
        check_scheme("single_choice", base, case["seed"] + 2)
        check_scheme(
            "batch_random", {**base, "k": case["k"]}, case["seed"] + 3
        )
        check_scheme(
            "one_plus_beta",
            {**base, "beta": (0.0, 0.25, 0.5, 1.0)[case["pick"] % 4]},
            case["seed"] + 4,
        )
        check_scheme(
            "always_go_left", {**base, "d": case["d"]}, case["seed"] + 5
        )

    @pytest.mark.parametrize("case", _ADAPTIVE, ids=_ids(_ADAPTIVE))
    def test_adaptive(self, case):
        base = {"n_bins": case["n_bins"], "n_balls": case["n_balls"]}
        threshold = (None, 1, 3)[case["pick"] % 3]
        check_scheme(
            "threshold_adaptive", {**base, "threshold": threshold}, case["seed"]
        )
        check_scheme(
            "two_phase_adaptive",
            {**base, "retry_probes": case["d"]},
            case["seed"] + 1,
        )

    def test_threshold_adaptive_callable_threshold_streams(self):
        # Callable thresholds are scalar-only in the batch engines but the
        # online stepper mirrors the scalar loop, so they stream with parity.
        check_scheme(
            "threshold_adaptive",
            {"n_bins": 128, "n_balls": 300,
             "threshold": lambda average: int(average) + 2},
            99,
            modes=("place", "batch"),
        )

    @pytest.mark.parametrize(
        "scheme,params",
        [
            ("kd_choice", {"n_bins": 48, "k": 3, "d": 7, "n_balls": 500}),
            ("weighted_kd_choice", {"n_bins": 32, "k": 3, "d": 7, "n_balls": 350}),
            ("stale_kd_choice",
             {"n_bins": 32, "k": 2, "d": 5, "stale_rounds": 7, "n_balls": 333}),
            ("one_plus_beta", {"n_bins": 40, "beta": 0.5, "n_balls": 700}),
            ("always_go_left", {"n_bins": 40, "d": 4, "n_balls": 700}),
            ("single_choice", {"n_bins": 40, "n_balls": 200}),
        ],
        ids=lambda value: value if isinstance(value, str) else "",
    )
    def test_ball_order_identical_across_ingestion(self, scheme, params):
        check_ball_order(scheme, params, seed=17)


# ----------------------------------------------------------------------
# Hypothesis layer
# ----------------------------------------------------------------------
if HAVE_HYPOTHESIS:

    @settings(max_examples=40, deadline=None)
    @given(
        n_bins=st.integers(4, 200),
        d=st.integers(1, 8),
        k_offset=st.integers(0, 7),
        n_balls=st.integers(1, 500),
        seed=st.integers(0, 2**31),
    )
    def test_kd_choice_stream_equivalence_hypothesis(
        n_bins, d, k_offset, n_balls, seed
    ):
        d = min(d, n_bins)
        k = max(1, d - k_offset)
        check_scheme(
            "kd_choice",
            {"n_bins": n_bins, "k": k, "d": d, "n_balls": n_balls},
            seed,
        )

    @settings(max_examples=25, deadline=None)
    @given(
        n_bins=st.integers(4, 150),
        d=st.integers(2, 8),
        k_offset=st.integers(0, 7),
        n_balls=st.integers(1, 400),
        stale_rounds=st.integers(1, 32),
        seed=st.integers(0, 2**31),
    )
    def test_stale_stream_equivalence_hypothesis(
        n_bins, d, k_offset, n_balls, stale_rounds, seed
    ):
        d = min(d, n_bins)
        k = max(1, d - k_offset)
        check_scheme(
            "stale_kd_choice",
            {"n_bins": n_bins, "k": k, "d": d, "n_balls": n_balls,
             "stale_rounds": stale_rounds},
            seed,
        )

    @settings(max_examples=25, deadline=None)
    @given(
        n_bins=st.integers(4, 150),
        d=st.integers(1, 7),
        k_offset=st.integers(0, 6),
        n_balls=st.integers(1, 300),
        seed=st.integers(0, 2**31),
    )
    def test_weighted_stream_equivalence_hypothesis(
        n_bins, d, k_offset, n_balls, seed
    ):
        d = min(d, n_bins)
        k = max(1, d - k_offset)
        check_scheme(
            "weighted_kd_choice",
            {"n_bins": n_bins, "k": k, "d": d, "n_balls": n_balls},
            seed,
        )


# ----------------------------------------------------------------------
# Registry dichotomy: online with parity, or a single-sourced rejection
# ----------------------------------------------------------------------
DICHOTOMY_PARAMS = {
    "kd_choice": {"n_bins": 64, "k": 2, "d": 4},
    "greedy_kd_choice": {"n_bins": 64, "k": 2, "d": 4},
    "serialized_kd_choice": {"n_bins": 64, "k": 2, "d": 4},
    "weighted_kd_choice": {"n_bins": 64, "k": 2, "d": 4},
    "stale_kd_choice": {"n_bins": 64, "k": 2, "d": 4, "stale_rounds": 4},
    "churn_kd_choice": {"n_bins": 64, "k": 2, "d": 4, "rounds": 32},
    "single_choice": {"n_bins": 64},
    "d_choice": {"n_bins": 64, "d": 3},
    "two_choice": {"n_bins": 64},
    "one_plus_beta": {"n_bins": 64, "beta": 0.5},
    "always_go_left": {"n_bins": 64, "d": 4},
    "batch_random": {"n_bins": 64, "k": 4},
    "threshold_adaptive": {"n_bins": 64},
    "two_phase_adaptive": {"n_bins": 64},
    "hierarchical_always_go_left": {"n_bins": 64, "topology": "quad_rack"},
    "locality_two_choice": {
        "n_bins": 64, "bias": 0.5, "threshold": 1, "topology": "dual_zone",
    },
    "cluster_scheduling": {"n_workers": 8, "n_jobs": 10},
    "storage_placement": {"n_servers": 16, "n_files": 20},
}


class TestOnlineDichotomy:
    def test_params_cover_registry(self):
        assert sorted(DICHOTOMY_PARAMS) == REGISTRY.names()

    def test_every_scheme_streams_or_rejects(self):
        for name in REGISTRY.names():
            info = get_scheme(name)
            params = DICHOTOMY_PARAMS[name]
            spec = SchemeSpec(scheme=name, params=params, seed=0)
            if info.online is None:
                reason = online_unsupported_reason(info, None, params)
                assert reason is not None and name in reason
                with pytest.raises(OnlineAllocatorError, match="no online"):
                    OnlineAllocator(spec)
            else:
                assert online_unsupported_reason(info, None, params) is None
                check_scheme(name, params, seed=5, modes=("place", "batch"))

    def test_describe_reports_online_capability(self):
        from repro.api import describe_scheme

        assert describe_scheme("kd_choice")["online"] is True
        assert describe_scheme("serialized_kd_choice")["online"] is True
        assert describe_scheme("churn_kd_choice")["online"] is False
        assert describe_scheme("cluster_scheduling")["online"] is False


# ----------------------------------------------------------------------
# Compiled engine: streaming through the C-backed kernels must stay inside
# the same parity envelope (loads, accounting, RNG stream) as the scalar
# reference, including across a mid-stream snapshot/restore boundary.
# ----------------------------------------------------------------------
from repro.core.compiled import backend_unavailable_reason  # noqa: E402

_COMPILED_REASON = backend_unavailable_reason()
requires_compiled = pytest.mark.skipif(
    _COMPILED_REASON is not None,
    reason=f"compiled backend unavailable: {_COMPILED_REASON}",
)

#: Every online-capable scheme with a compiled kernel, with params sized to
#: force multiple blocks, partial tail rounds and pending-queue splits.
COMPILED_STREAM_PARAMS = [
    ("kd_choice", {"n_bins": 96, "k": 3, "d": 7, "n_balls": 1200}),
    ("d_choice", {"n_bins": 96, "d": 5, "n_balls": 1100}),
    ("two_choice", {"n_bins": 96, "n_balls": 1000}),
    ("stale_kd_choice",
     {"n_bins": 96, "k": 2, "d": 5, "stale_rounds": 7, "n_balls": 900}),
    ("weighted_kd_choice",
     {"n_bins": 96, "k": 3, "d": 6, "weights": "pareto", "n_balls": 800}),
    ("one_plus_beta", {"n_bins": 96, "beta": 0.4, "n_balls": 1300}),
    ("always_go_left", {"n_bins": 96, "d": 4, "n_balls": 1200}),
    ("threshold_adaptive", {"n_bins": 96, "max_probes": 5, "n_balls": 1000}),
    ("two_phase_adaptive",
     {"n_bins": 96, "retry_probes": 4, "n_balls": 1000}),
]
_COMPILED_IDS = [scheme for scheme, _ in COMPILED_STREAM_PARAMS]


@requires_compiled
class TestCompiledStreamEquivalence:
    @pytest.mark.parametrize(
        "scheme,params", COMPILED_STREAM_PARAMS, ids=_COMPILED_IDS
    )
    @pytest.mark.parametrize("seed", [5, 1234])
    def test_compiled_stream_matches_scalar_batch(self, scheme, params, seed):
        n_items = params["n_balls"]
        reference_rng = np.random.default_rng(seed)
        batch = simulate(
            SchemeSpec(scheme=scheme, params=params, rng=reference_rng,
                       engine="scalar")
        )
        reference_state = reference_rng.bit_generator.state
        for mode in ("batch", "mixed"):
            stream_rng = np.random.default_rng(seed)
            allocator = _stream(
                SchemeSpec(scheme=scheme, params=params, rng=stream_rng,
                           engine="compiled"),
                n_items,
                mode,
            )
            assert allocator.stepper.kernel_mode == "compiled"
            assert np.array_equal(allocator.loads, batch.loads), (scheme, mode)
            assert allocator.stepper.messages == batch.messages, (scheme, mode)
            assert allocator.stepper.rounds == batch.rounds, (scheme, mode)
            assert (
                stream_rng.bit_generator.state == reference_state
            ), f"{scheme}/{mode}: compiled stream consumed the RNG differently"

    @pytest.mark.parametrize(
        "scheme,params", COMPILED_STREAM_PARAMS, ids=_COMPILED_IDS
    )
    def test_mid_stream_snapshot_restore(self, scheme, params, seed=31):
        """A compiled stream survives snapshot/restore bit-identically."""
        n_items = params["n_balls"]
        cut = n_items // 3
        unbroken = OnlineAllocator(
            SchemeSpec(scheme=scheme, params=params, seed=seed,
                       engine="compiled")
        )
        unbroken.place_batch(n_items)

        first = OnlineAllocator(
            SchemeSpec(scheme=scheme, params=params, seed=seed,
                       engine="compiled")
        )
        first.place_batch(cut)
        resumed = OnlineAllocator.restore(first.snapshot())
        assert resumed.stepper.kernel_mode == "compiled"
        resumed.place_batch(n_items - cut)
        assert np.array_equal(resumed.loads, unbroken.loads), scheme
        assert resumed.stepper.messages == unbroken.stepper.messages, scheme
        # The stepper state (loads, RNG, buffers) must be identical; the
        # telemetry wall_time is clock-dependent, so compare stepper dicts.
        assert (
            resumed.snapshot()["stepper"] == unbroken.snapshot()["stepper"]
        ), scheme

    def test_auto_with_repro_kernel_env_upgrades_and_matches(self, monkeypatch):
        params = {"n_bins": 80, "k": 2, "d": 5, "n_balls": 700}
        scalar = OnlineAllocator(
            SchemeSpec(scheme="kd_choice", params=params, seed=9,
                       engine="scalar")
        )
        for _ in range(700):
            scalar.place()
        monkeypatch.setenv("REPRO_KERNEL", "compiled")
        auto = OnlineAllocator(
            SchemeSpec(scheme="kd_choice", params=params, seed=9)
        )
        assert auto.stepper.kernel_mode == "compiled"
        auto.place_batch(700)
        assert np.array_equal(auto.loads, scalar.loads)
        assert auto.stepper.messages == scalar.stepper.messages
