"""OnlineAllocator behaviour: snapshots, churn, capacity, error surfaces."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import SchemeSpec
from repro.online import (
    OnlineAllocator,
    OnlineAllocatorError,
    SNAPSHOT_FORMAT,
)

KD_SPEC = SchemeSpec(
    scheme="kd_choice", params={"n_bins": 64, "k": 2, "d": 4, "n_balls": 256},
    seed=7,
)

SNAPSHOT_CASES = [
    ("kd_choice", {"n_bins": 64, "k": 4, "d": 8, "n_balls": 999}),
    ("greedy_kd_choice", {"n_bins": 64, "k": 2, "d": 5, "n_balls": 200}),
    ("serialized_kd_choice", {"n_bins": 48, "k": 4, "d": 8, "n_balls": 400}),
    ("weighted_kd_choice", {"n_bins": 32, "k": 3, "d": 7, "n_balls": 350}),
    ("stale_kd_choice",
     {"n_bins": 32, "k": 2, "d": 5, "stale_rounds": 7, "n_balls": 333}),
    ("single_choice", {"n_bins": 40, "n_balls": 200}),
    ("batch_random", {"n_bins": 40, "k": 8, "n_balls": 200}),
    ("one_plus_beta", {"n_bins": 40, "beta": 0.5, "n_balls": 300}),
    ("always_go_left", {"n_bins": 40, "d": 4, "n_balls": 300}),
    ("threshold_adaptive", {"n_bins": 64, "n_balls": 200}),
    ("two_phase_adaptive", {"n_bins": 64, "n_balls": 200}),
]


class TestSnapshotRestore:
    @pytest.mark.parametrize(
        "scheme,params", SNAPSHOT_CASES, ids=[c[0] for c in SNAPSHOT_CASES]
    )
    def test_midstream_roundtrip_continues_identically(self, scheme, params):
        n_items = params["n_balls"]
        cut = n_items // 3
        reference = OnlineAllocator(
            SchemeSpec(scheme=scheme, params=params, seed=3)
        )
        for _ in range(cut):
            reference.place()
        # Force a full JSON round trip: what restore() sees after disk.
        snapshot = json.loads(json.dumps(reference.snapshot()))
        assert snapshot["format"] == SNAPSHOT_FORMAT
        restored = OnlineAllocator.restore(snapshot)
        tail_reference = [reference.place() for _ in range(n_items - cut)]
        tail_restored = [restored.place() for _ in range(n_items - cut)]
        assert tail_reference == tail_restored
        assert np.array_equal(reference.loads, restored.loads)
        assert reference.stepper.messages == restored.stepper.messages
        assert reference.summary() == restored.summary()

    def test_restore_then_batch_ingestion_matches(self):
        reference = OnlineAllocator(KD_SPEC)
        for _ in range(100):
            reference.place()
        restored = OnlineAllocator.restore(
            json.loads(json.dumps(reference.snapshot()))
        )
        tail = [reference.place() for _ in range(156)]
        assert tail == list(restored.place_batch(156))

    def test_snapshot_preserves_tracked_items_and_counts(self):
        allocator = OnlineAllocator(KD_SPEC, track_items=True)
        allocator.place("a")
        allocator.place("b")
        allocator.place_batch(4, items=["c", "d", "e", "f"])
        allocator.remove("b")
        restored = OnlineAllocator.restore(
            json.loads(json.dumps(allocator.snapshot()))
        )
        assert restored.items() == allocator.items()
        assert restored.placed == 6 and restored.removed == 1
        # Removing the same item from both continues identically.
        assert allocator.remove("c") == restored.remove("c")

    def test_snapshot_rejects_unserializable_params(self):
        spec = SchemeSpec(
            scheme="threshold_adaptive",
            params={"n_bins": 32, "threshold": lambda average: 2},
        )
        allocator = OnlineAllocator(spec)
        with pytest.raises(OnlineAllocatorError, match="JSON-serializable"):
            allocator.snapshot()

    def test_restore_rejects_foreign_documents(self):
        with pytest.raises(OnlineAllocatorError, match="format"):
            OnlineAllocator.restore({"format": "something-else"})
        good = OnlineAllocator(KD_SPEC).snapshot()
        good["version"] = 999
        with pytest.raises(OnlineAllocatorError, match="version"):
            OnlineAllocator.restore(good)


class TestChurn:
    def test_remove_returns_bin_and_decrements(self):
        allocator = OnlineAllocator(KD_SPEC)
        bin_index = allocator.place("job-1")
        before = int(allocator.loads[bin_index])
        assert allocator.remove("job-1") == bin_index
        assert int(allocator.loads[bin_index]) == before - 1
        assert allocator.removed == 1

    def test_remove_unknown_item_is_an_error(self):
        allocator = OnlineAllocator(KD_SPEC)
        allocator.place()
        with pytest.raises(OnlineAllocatorError, match="unknown item"):
            allocator.remove("nope")

    def test_track_items_auto_ids(self):
        allocator = OnlineAllocator(KD_SPEC, track_items=True)
        bin_index = allocator.place()
        assert allocator.items() == {0: bin_index}
        allocator.remove(0)
        assert allocator.items() == {}

    def test_duplicate_item_rejected(self):
        allocator = OnlineAllocator(KD_SPEC)
        allocator.place("x")
        with pytest.raises(OnlineAllocatorError, match="already placed"):
            allocator.place("x")

    def test_weighted_remove_returns_the_ball_weight(self):
        spec = SchemeSpec(
            scheme="weighted_kd_choice",
            params={"n_bins": 16, "k": 2, "d": 4, "n_balls": 32},
            seed=1,
        )
        allocator = OnlineAllocator(spec, track_items=True)
        allocator.place_batch(32)
        weighted_before = allocator.stepper.weighted_loads.sum()
        bin_index = allocator.remove(5)
        weight = allocator.stepper.ball_weight(5)
        assert weight > 0
        assert allocator.stepper.weighted_loads.sum() == pytest.approx(
            weighted_before - weight
        )
        assert int(allocator.loads[bin_index]) >= 0

    def test_weighted_remove_without_tracking_is_rejected(self):
        spec = SchemeSpec(
            scheme="weighted_kd_choice",
            params={"n_bins": 16, "k": 2, "d": 4, "n_balls": 32},
            seed=1,
        )
        allocator = OnlineAllocator(spec)
        allocator.place("w")
        # The item is tracked (explicit id), so removal works; but removing
        # via a stepper call without a ball index must fail loudly.
        with pytest.raises(ValueError, match="ball index"):
            allocator.stepper.remove_ball(int(allocator.items()["w"]))

    def test_placements_after_remove_read_decremented_loads(self):
        # Determinism across ingestion modes with interleaved removals.
        def run(batch_mode: bool):
            spec = SchemeSpec(
                scheme="kd_choice",
                params={"n_bins": 32, "k": 2, "d": 4, "n_balls": 200},
                seed=9,
                engine="auto" if batch_mode else "scalar",
            )
            allocator = OnlineAllocator(spec, track_items=True)
            sequence = []
            item = 0
            for step in range(20):
                if batch_mode:
                    sequence.extend(
                        allocator.place_batch(
                            8, items=list(range(item, item + 8))
                        )
                    )
                else:
                    for _ in range(8):
                        allocator.place(item + _)
                        sequence.append(allocator.items()[item + _])
                item += 8
                allocator.remove(step * 8)  # retire the run's first item
            return sequence, allocator.loads.copy()

        seq_scalar, loads_scalar = run(False)
        seq_batch, loads_batch = run(True)
        assert list(seq_scalar) == list(seq_batch)
        assert np.array_equal(loads_scalar, loads_batch)


class TestCapacity:
    def test_exhaustion_raises_with_guidance(self):
        spec = SchemeSpec(
            scheme="kd_choice", params={"n_bins": 8, "k": 2, "d": 4,
                                        "n_balls": 4}, seed=0,
        )
        allocator = OnlineAllocator(spec)
        allocator.place_batch(4)
        assert allocator.remaining == 0
        with pytest.raises(OnlineAllocatorError, match="n_balls"):
            allocator.place()
        with pytest.raises(OnlineAllocatorError, match="n_balls"):
            allocator.place_batch(1)

    def test_capacity_defaults_to_n_bins(self):
        allocator = OnlineAllocator(
            SchemeSpec(scheme="two_choice", params={"n_bins": 50}, seed=0)
        )
        assert allocator.capacity == 50

    def test_place_batch_validates_inputs(self):
        allocator = OnlineAllocator(KD_SPEC)
        with pytest.raises(OnlineAllocatorError, match="non-negative"):
            allocator.place_batch(-1)
        with pytest.raises(OnlineAllocatorError, match="entries"):
            allocator.place_batch(2, items=["only-one"])

    def test_seed_override_matches_spec_seed(self):
        by_spec = OnlineAllocator(KD_SPEC)
        by_override = OnlineAllocator(KD_SPEC.with_seed(None), seed=7)
        n = KD_SPEC.params["n_balls"]
        assert [by_spec.place() for _ in range(n)] == [
            by_override.place() for _ in range(n)
        ]

    def test_non_spec_input_rejected(self):
        with pytest.raises(OnlineAllocatorError, match="SchemeSpec"):
            OnlineAllocator("kd_choice")

    def test_summary_is_deterministic_and_complete(self):
        allocator = OnlineAllocator(KD_SPEC)
        allocator.place_batch(256)
        summary = allocator.summary()
        assert summary["placed"] == 256
        assert summary["live_balls"] == 256
        assert summary["max_load"] >= 1
        assert len(summary["loads_sha256"]) == 64
        again = OnlineAllocator(KD_SPEC)
        again.place_batch(256)
        assert again.summary() == summary


class TestStaleEpochChurn:
    def test_removing_a_pending_epoch_ball_cancels_the_placement(self):
        spec = SchemeSpec(
            scheme="stale_kd_choice",
            params={"n_bins": 16, "k": 2, "d": 4, "stale_rounds": 8,
                    "n_balls": 32},
            seed=2,
        )
        allocator = OnlineAllocator(spec, track_items=True)
        bin_index = allocator.place("early")  # epoch of 8 rounds: pending
        assert int(allocator.loads[bin_index]) == 0  # not committed yet
        assert allocator.remove("early") == bin_index
        # Finish the stream; the cancelled ball never lands.
        while allocator.remaining:
            allocator.place()
        assert int(allocator.loads.sum()) == 32 - 1


class TestReviewRegressions:
    def test_rejected_duplicate_place_leaves_no_phantom_ball(self):
        allocator = OnlineAllocator(KD_SPEC)
        first_bin = allocator.place("x")
        total_before = int(allocator.loads.sum())
        with pytest.raises(OnlineAllocatorError, match="already placed"):
            allocator.place("x")
        assert allocator.placed == 1
        assert int(allocator.loads.sum()) == total_before
        assert allocator.items() == {"x": first_bin}

    def test_rejected_duplicate_batch_places_nothing(self):
        allocator = OnlineAllocator(KD_SPEC)
        allocator.place("x")
        # One place() applied a whole k=2 round; record that baseline.
        total_before = int(allocator.loads.sum())
        for bad in (["x", "y", "z"], ["a", "b", "a"]):
            with pytest.raises(OnlineAllocatorError, match="already placed|duplicate"):
                allocator.place_batch(3, items=bad)
        assert allocator.placed == 1
        assert int(allocator.loads.sum()) == total_before
        assert allocator.items() == {"x": allocator.items()["x"]}

    def test_snapshot_preserves_telemetry_sampling_phase(self):
        from repro.online import LoadTelemetry

        spec = SchemeSpec(
            scheme="single_choice", params={"n_bins": 64, "n_balls": 400},
            seed=1,
        )
        reference = OnlineAllocator(spec, telemetry=LoadTelemetry(sample_every=64))
        for _ in range(100):
            reference.place()
        restored = OnlineAllocator.restore(
            json.loads(json.dumps(reference.snapshot())),
            telemetry=LoadTelemetry(sample_every=64),
        )
        for allocator in (reference, restored):
            for _ in range(300):
                allocator.place()
        assert (
            restored.telemetry.samples_taken == reference.telemetry.samples_taken
        )
        assert restored.summary() == reference.summary()

    def test_stale_telemetry_samples_report_committed_max(self):
        # Scalar ingestion's incremental max lags deferred epoch commits;
        # samples must read the committed loads, identically to batch
        # ingestion of the same stream.
        from repro.online import LoadTelemetry

        samples = {}
        for engine in ("scalar", "auto"):
            spec = SchemeSpec(
                scheme="stale_kd_choice",
                params={"n_bins": 16, "k": 2, "d": 4, "stale_rounds": 8,
                        "n_balls": 400},
                seed=0,
                engine=engine,
            )
            telemetry = LoadTelemetry(sample_every=64)
            allocator = OnlineAllocator(spec, telemetry=telemetry)
            if engine == "scalar":
                for _ in range(400):
                    allocator.place()
            else:
                for _ in range(400 // 64 + 1):
                    allocator.place_batch(min(64, allocator.remaining))
            samples[engine] = [
                (s.events, s.max_load, s.gap) for s in telemetry.history()
            ]
        assert samples["scalar"] == samples["auto"]

    def test_explicit_id_colliding_with_auto_sequence_key_is_rejected(self):
        # track_items auto-keys are sequence numbers; an explicit integer id
        # that collides with a later sequence number must fail loudly, not
        # silently overwrite the tracked entry (remove() would then retire
        # the wrong ball).
        allocator = OnlineAllocator(KD_SPEC, track_items=True)
        allocator.place(5)  # explicit id 5 at sequence 0
        for _ in range(4):
            allocator.place()  # sequences 1-4
        with pytest.raises(OnlineAllocatorError, match="already placed"):
            allocator.place()  # sequence 5 would collide with item 5
        with pytest.raises(OnlineAllocatorError, match="already placed"):
            allocator.place_batch(3)  # auto keys 5,6,7 — same collision
