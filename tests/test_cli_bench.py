"""CLI regression gates: ``schemes --check`` and ``bench --compare``.

Both commands exist so CI can fail fast with an actionable message: the
parity lint names the scheme or module that drifted from the kernel table,
and the bench comparator names the throughput series that regressed beyond
tolerance.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main


def _write(path: Path, payload: dict) -> str:
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


def _snapshot(batch: int, stream: int = 50_000, cpus: int = 2) -> dict:
    return {
        "cpus": cpus,
        "schemes": {
            "kd_choice": {
                "batch_items_per_sec": batch,
                "stream_items_per_sec": stream,
            }
        },
    }


class TestSchemesCheck:
    def test_clean_registry_exits_zero(self, capsys):
        assert main(["schemes", "--check"]) == 0
        out = capsys.readouterr().out
        assert "parity OK" in out

    def test_drift_names_the_scheme_and_exits_nonzero(self, capsys, monkeypatch):
        from dataclasses import replace

        from repro.api.registry import REGISTRY

        info = REGISTRY.get("kd_choice")
        monkeypatch.setitem(
            REGISTRY._schemes, "kd_choice", replace(info, kernel=None)
        )
        with pytest.raises(SystemExit, match="parity violation"):
            main(["schemes", "--check"])
        out = capsys.readouterr().out
        assert "kd_choice" in out and "api/schemes.py" in out


class TestBenchCompare:
    def test_within_tolerance_exits_zero(self, capsys, tmp_path):
        old = _write(tmp_path / "old.json", _snapshot(1_000_000))
        new = _write(tmp_path / "new.json", _snapshot(950_000))
        assert main(["bench", "--compare", old, new]) == 0
        out = capsys.readouterr().out
        assert "within 10%" in out

    def test_regression_names_the_series_and_exits_nonzero(self, capsys, tmp_path):
        old = _write(tmp_path / "old.json", _snapshot(1_000_000))
        new = _write(tmp_path / "new.json", _snapshot(500_000))
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--compare", old, new])
        assert "batch_items_per_sec" in str(excinfo.value)
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_tolerance_flag_widens_the_band(self, tmp_path):
        old = _write(tmp_path / "old.json", _snapshot(1_000_000))
        new = _write(tmp_path / "new.json", _snapshot(700_000))
        assert main(
            ["bench", "--compare", old, new, "--tolerance", "0.5"]
        ) == 0

    def test_cpu_mismatch_warns_and_skips(self, capsys, tmp_path):
        old = _write(tmp_path / "old.json", _snapshot(1_000_000, cpus=1))
        new = _write(tmp_path / "new.json", _snapshot(100_000, cpus=8))
        assert main(["bench", "--compare", old, new]) == 0
        out = capsys.readouterr().out
        assert "different machines" in out

    def test_unreadable_snapshot_is_a_clean_error(self, tmp_path):
        old = _write(tmp_path / "old.json", _snapshot(1_000_000))
        with pytest.raises(SystemExit, match="cannot read"):
            main(["bench", "--compare", old, str(tmp_path / "missing.json")])

    def test_disjoint_snapshots_are_a_clean_error(self, tmp_path):
        old = _write(tmp_path / "old.json", _snapshot(1_000_000))
        new = _write(tmp_path / "new.json", {"cpus": 2, "other": 1})
        with pytest.raises(SystemExit, match="nothing to compare"):
            main(["bench", "--compare", old, new])

    def test_series_present_in_one_snapshot_only_is_reported(self, capsys, tmp_path):
        extra = _snapshot(950_000)
        extra["single_shard_items_per_sec"] = 900_000
        old = _write(tmp_path / "old.json", _snapshot(1_000_000))
        new = _write(tmp_path / "new.json", extra)
        assert main(["bench", "--compare", old, new]) == 0
        out = capsys.readouterr().out
        assert "single_shard_items_per_sec" in out
        assert "one snapshot only" in out

    def test_zero_baseline_is_an_anomaly_not_a_pass(self, capsys, tmp_path):
        # The historical bug: a 0/s baseline divided to +0.0% and sailed
        # through the gate; a zeroed (crashed or fabricated) snapshot must
        # fail loudly instead.
        old = _write(tmp_path / "old.json", _snapshot(0))
        new = _write(tmp_path / "new.json", _snapshot(950_000))
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--compare", old, new])
        assert "batch_items_per_sec" in str(excinfo.value)
        assert "unusable rate" in str(excinfo.value)
        out = capsys.readouterr().out
        batch_line = next(
            line for line in out.splitlines() if "batch_items_per_sec" in line
        )
        assert "ANOMALY" in batch_line
        assert "+0.0%" not in batch_line

    def test_nan_rate_is_an_anomaly(self, capsys, tmp_path):
        # json can carry NaN (Python's encoder emits it by default); it must
        # not satisfy the "no regression" comparison by being unordered.
        broken = _snapshot(1_000_000)
        broken["schemes"]["kd_choice"]["batch_items_per_sec"] = float("nan")
        old = _write(tmp_path / "old.json", _snapshot(1_000_000))
        new = _write(tmp_path / "new.json", broken)
        with pytest.raises(SystemExit, match="unusable rate"):
            main(["bench", "--compare", old, new])
        assert "ANOMALY" in capsys.readouterr().out

    def test_negative_baseline_is_an_anomaly(self, tmp_path):
        old = _write(tmp_path / "old.json", _snapshot(-5))
        new = _write(tmp_path / "new.json", _snapshot(950_000))
        with pytest.raises(SystemExit, match="unusable rate"):
            main(["bench", "--compare", old, new])

    def test_tolerance_of_one_exempts_anomalies_with_warning(self, capsys, tmp_path):
        old = _write(tmp_path / "old.json", _snapshot(0))
        new = _write(tmp_path / "new.json", _snapshot(950_000))
        assert main(
            ["bench", "--compare", old, new, "--tolerance", "1.0"]
        ) == 0
        out = capsys.readouterr().out
        assert "ANOMALY" in out and "ignored" in out

    def test_anomaly_does_not_mask_real_regressions(self, capsys, tmp_path):
        # One series anomalous, the other regressed: both must be named.
        old_payload = _snapshot(0, stream=100_000)
        new_payload = _snapshot(950_000, stream=20_000)
        old = _write(tmp_path / "old.json", old_payload)
        new = _write(tmp_path / "new.json", new_payload)
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--compare", old, new])
        message = str(excinfo.value)
        assert "regressed" in message and "unusable rate" in message
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "ANOMALY" in out
