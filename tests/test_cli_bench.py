"""CLI regression gates: ``schemes --check`` and ``bench --compare``.

Both commands exist so CI can fail fast with an actionable message: the
parity lint names the scheme or module that drifted from the kernel table,
and the bench comparator names the throughput series that regressed beyond
tolerance.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main


def _write(path: Path, payload: dict) -> str:
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


def _snapshot(batch: int, stream: int = 50_000, cpus: int = 2) -> dict:
    return {
        "cpus": cpus,
        "schemes": {
            "kd_choice": {
                "batch_items_per_sec": batch,
                "stream_items_per_sec": stream,
            }
        },
    }


class TestSchemesCheck:
    def test_clean_registry_exits_zero(self, capsys):
        assert main(["schemes", "--check"]) == 0
        out = capsys.readouterr().out
        assert "parity OK" in out

    def test_drift_names_the_scheme_and_exits_nonzero(self, capsys, monkeypatch):
        from dataclasses import replace

        from repro.api.registry import REGISTRY

        info = REGISTRY.get("kd_choice")
        monkeypatch.setitem(
            REGISTRY._schemes, "kd_choice", replace(info, kernel=None)
        )
        with pytest.raises(SystemExit, match="parity violation"):
            main(["schemes", "--check"])
        out = capsys.readouterr().out
        assert "kd_choice" in out and "api/schemes.py" in out


class TestBenchCompare:
    def test_within_tolerance_exits_zero(self, capsys, tmp_path):
        old = _write(tmp_path / "old.json", _snapshot(1_000_000))
        new = _write(tmp_path / "new.json", _snapshot(950_000))
        assert main(["bench", "--compare", old, new]) == 0
        out = capsys.readouterr().out
        assert "within 10%" in out

    def test_regression_names_the_series_and_exits_nonzero(self, capsys, tmp_path):
        old = _write(tmp_path / "old.json", _snapshot(1_000_000))
        new = _write(tmp_path / "new.json", _snapshot(500_000))
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--compare", old, new])
        assert "batch_items_per_sec" in str(excinfo.value)
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_tolerance_flag_widens_the_band(self, tmp_path):
        old = _write(tmp_path / "old.json", _snapshot(1_000_000))
        new = _write(tmp_path / "new.json", _snapshot(700_000))
        assert main(
            ["bench", "--compare", old, new, "--tolerance", "0.5"]
        ) == 0

    def test_cpu_mismatch_warns_and_skips(self, capsys, tmp_path):
        old = _write(tmp_path / "old.json", _snapshot(1_000_000, cpus=1))
        new = _write(tmp_path / "new.json", _snapshot(100_000, cpus=8))
        assert main(["bench", "--compare", old, new]) == 0
        out = capsys.readouterr().out
        assert "different machines" in out

    def test_unreadable_snapshot_is_a_clean_error(self, tmp_path):
        old = _write(tmp_path / "old.json", _snapshot(1_000_000))
        with pytest.raises(SystemExit, match="cannot read"):
            main(["bench", "--compare", old, str(tmp_path / "missing.json")])

    def test_disjoint_snapshots_are_a_clean_error(self, tmp_path):
        old = _write(tmp_path / "old.json", _snapshot(1_000_000))
        new = _write(tmp_path / "new.json", {"cpus": 2, "other": 1})
        with pytest.raises(SystemExit, match="nothing to compare"):
            main(["bench", "--compare", old, new])

    def test_series_present_in_one_snapshot_only_is_reported(self, capsys, tmp_path):
        extra = _snapshot(950_000)
        extra["single_shard_items_per_sec"] = 900_000
        old = _write(tmp_path / "old.json", _snapshot(1_000_000))
        new = _write(tmp_path / "new.json", extra)
        assert main(["bench", "--compare", old, new]) == 0
        out = capsys.readouterr().out
        assert "single_shard_items_per_sec" in out
        assert "one snapshot only" in out
