"""Documentation and packaging consistency checks.

These tests keep the README, DESIGN.md and EXPERIMENTS.md honest: the
commands and modules they reference must exist, and the README quickstart
snippet must actually run against the installed package.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

import repro
from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parents[2]


def _read(name: str) -> str:
    path = REPO_ROOT / name
    if not path.exists():
        pytest.skip(f"{name} not present (running outside the repository checkout)")
    return path.read_text(encoding="utf-8")


class TestDocumentsExist:
    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "EXPERIMENTS.md", "pyproject.toml"]
    )
    def test_required_documents_present(self, name):
        assert (REPO_ROOT / name).exists(), f"{name} is a required deliverable"

    def test_examples_present(self):
        examples = list((REPO_ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3
        names = {path.name for path in examples}
        assert "quickstart.py" in names


class TestReadmeConsistency:
    def test_quickstart_snippet_runs(self):
        readme = _read("README.md")
        # Run the core of the quickstart: the public names it uses must exist
        # and behave as described.
        assert "SchemeSpec" in readme
        assert "simulate" in readme
        result = repro.simulate(
            repro.SchemeSpec(
                scheme="kd_choice",
                params={"n_bins": 1024, "k": 8, "d": 16},
                seed=0,
            )
        )
        assert result.max_load >= 1
        assert "predicted_max_load" in readme
        from repro.analysis import classify_regime, predicted_max_load

        assert classify_regime(8, 16, 1024).name == "dk_constant"
        assert predicted_max_load(8, 16, 1024) > 0

    def test_cli_commands_in_readme_exist(self):
        readme = _read("README.md")
        parser = build_parser()
        subcommands = {
            action.dest
            for action in parser._actions
            if hasattr(action, "choices") and action.choices
            for action in [action]
        }
        # Extract `python -m repro <command>` mentions.
        mentioned = set(re.findall(r"python -m repro ([a-z0-9-]+)", readme))
        choices = set()
        for action in parser._actions:
            if getattr(action, "choices", None):
                choices.update(action.choices)
        unknown = mentioned - choices
        assert not unknown, f"README mentions unknown CLI commands: {unknown}"

    def test_architecture_section_matches_package_layout(self):
        readme = _read("README.md")
        for subpackage in (
            "core", "analysis", "simulation", "experiments", "cluster",
            "storage", "online",
        ):
            assert subpackage in readme
            importlib.import_module(f"repro.{subpackage}")


class TestDesignConsistency:
    def test_design_lists_every_bench_file(self):
        design = _read("DESIGN.md")
        bench_dir = REPO_ROOT / "benchmarks"
        referenced = set(re.findall(r"bench_[a-z0-9_]+\.py", design))
        existing = {path.name for path in bench_dir.glob("bench_*.py")}
        missing = referenced - existing
        assert not missing, f"DESIGN.md references missing bench files: {missing}"

    def test_every_bench_file_reproduces_a_documented_artefact(self):
        design = _read("DESIGN.md")
        bench_dir = REPO_ROOT / "benchmarks"
        for path in bench_dir.glob("bench_*.py"):
            if path.name in ("bench_core_throughput.py",):
                continue  # micro-benchmarks, not paper artefacts
            assert path.name in design, (
                f"{path.name} is not referenced in DESIGN.md's experiment index"
            )

    def test_experiments_md_covers_table_and_figures(self):
        experiments = _read("EXPERIMENTS.md")
        for artefact in ("Table 1", "Figure 1", "Figure 2", "Theorem 1", "Theorem 2"):
            assert artefact in experiments


class TestPackagingMetadata:
    def test_version_consistency(self):
        pyproject = _read("pyproject.toml")
        assert f'version = "{repro.__version__}"' in pyproject

    def test_console_script_points_at_cli_main(self):
        pyproject = _read("pyproject.toml")
        assert 'repro = "repro.__main__:main"' in pyproject
        assert 'repro-kd = "repro.cli:main"' in pyproject
        from repro.cli import main

        assert callable(main)

    def test_runtime_dependency_is_numpy_only(self):
        pyproject = _read("pyproject.toml")
        dependencies_block = re.search(r"dependencies = \[(.*?)\]", pyproject, re.S)
        assert dependencies_block is not None
        deps = [d.strip().strip('"') for d in dependencies_block.group(1).split(",") if d.strip()]
        assert all(dep.startswith("numpy") for dep in deps)
