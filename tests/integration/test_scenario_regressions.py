"""Seed-pinned balance regressions for the scenario library v2.

Every new workload scenario, streamed through three allocation schemes at
pinned ``(spec seed, workload seed)``, must keep reproducing the exact
load distribution it produced when the scenario was registered: the pins
below record max-load, gap, load percentiles and the SHA-256 of the final
load vector (the strongest possible pin — any reordering or off-by-one in
the stream derivation changes it).

The pins are regression locks, not paper claims; EXPERIMENTS.md discusses
what the numbers *mean*.  Regenerate (only after an intentional change to
a scenario's derivation) by re-running the stream commands printed in each
pin's id, e.g.::

    PYTHONPATH=src python -m repro stream --scheme two_choice \
        --param n_bins=256 --items 2000 --workload zipf_items \
        --workload-param exponent=1.2 --workload-param universe=512 \
        --seed 1 --workload-seed 5
"""

from __future__ import annotations

import pytest

from repro.api import SchemeSpec
from repro.online.trace import stream_workload

SCHEME_PARAMS = {
    "two_choice": {},
    "weighted_kd_choice": {"k": 2, "d": 4, "weights": "exponential"},
    "always_go_left": {"d": 4},
}

SCENARIO_PARAMS = {
    "zipf_items": {"exponent": 1.2, "universe": 512},
    "adversarial_burst": {"burst": 32, "attack": 0.5},
    "diurnal": {"period": 30.0, "amplitude": 0.6, "churn": 0.1},
    "hetero_bins": {"spread": 4.0, "churn": 0.1},
    "multi_tenant": {"tenants": 3, "churn": 0.2},
}

#: (scheme, workload) -> pinned stats at n_bins=256, items=2000,
#: spec seed 1, workload seed 5.
PINS = {
    ("two_choice", "zipf_items"): {
        "max_load": 3, "gap": 1.875, "load_p50": 1.0, "load_p99": 3.0,
        "loads_sha256":
        "74af69f544f204e08dc969261f075dbe0f9937adf22b6e027d3a2001651ed35f",
    },
    ("two_choice", "adversarial_burst"): {
        "max_load": 6, "gap": 2.09375, "load_p50": 4.0, "load_p99": 6.0,
        "loads_sha256":
        "134a780fa3e8c47e26419da8cafbd373e0e3961211eeded15467821d1d27fed5",
    },
    ("two_choice", "diurnal"): {
        "max_load": 9, "gap": 1.8984375, "load_p50": 7.0, "load_p99": 9.0,
        "loads_sha256":
        "cd9b79a5a55e916d2714ecfbf37256cdf61d7391aaac19469d01acd44b8cb993",
    },
    ("two_choice", "hetero_bins"): {
        "max_load": 14, "gap": 6.8984375, "load_p50": 7.0, "load_p99": 13.0,
        "loads_sha256":
        "9f92d3303241a1fef73ea9c642af7f1af77d7c9f89fdf207c998e4202105943e",
    },
    ("two_choice", "multi_tenant"): {
        "max_load": 8, "gap": 1.62890625, "load_p50": 7.0, "load_p99": 8.0,
        "loads_sha256":
        "8c459e78bac4bd5c42da19c9a1876ae1347aed9c53ee386da6cbe8f0d37d9370",
    },
    ("weighted_kd_choice", "zipf_items"): {
        "max_load": 4, "gap": 2.875, "load_p50": 1.0, "load_p99": 3.0,
        "loads_sha256":
        "e87d93b4646cdc0fff2b5d5aa2c00fe29f611c591ac1875a7c3c4417270d23c5",
    },
    ("weighted_kd_choice", "adversarial_burst"): {
        "max_load": 8, "gap": 4.09375, "load_p50": 4.0, "load_p99": 7.0,
        "loads_sha256":
        "7eae00dbe19afc9f34b0e87030753ee803b98d6c3e1c5c5af5143eea646c57ee",
    },
    ("weighted_kd_choice", "diurnal"): {
        "max_load": 13, "gap": 5.8984375, "load_p50": 7.0,
        "load_p99": 12.449999999999989,
        "loads_sha256":
        "edc085451a28ec26d3cc93b55498691f410fef10ddba3c35225198b74ae07177",
    },
    ("weighted_kd_choice", "hetero_bins"): {
        "max_load": 20, "gap": 12.8984375, "load_p50": 7.0,
        "load_p99": 16.44999999999999,
        "loads_sha256":
        "bafe62f6282b90cd772da936bb7d11e0ff184f6e6715c4d6bb612fca6a5a11e1",
    },
    ("weighted_kd_choice", "multi_tenant"): {
        "max_load": 11, "gap": 4.62890625, "load_p50": 6.0, "load_p99": 11.0,
        "loads_sha256":
        "3178e5ad5a05f0fb50aa54c347c1e0a019193ec8dad2644455371d75a38d4723",
    },
    ("always_go_left", "zipf_items"): {
        "max_load": 2, "gap": 0.875, "load_p50": 1.0, "load_p99": 2.0,
        "loads_sha256":
        "a947795291325652b68370057d2daba47ae9c697bab07e43889a8ad1af2a3e1e",
    },
    ("always_go_left", "adversarial_burst"): {
        "max_load": 5, "gap": 1.09375, "load_p50": 4.0, "load_p99": 5.0,
        "loads_sha256":
        "753a59210cd44e7028e7f18d99dd61e2a00f26d21f017b335dfcf950ab612b05",
    },
    ("always_go_left", "diurnal"): {
        "max_load": 8, "gap": 0.8984375, "load_p50": 7.0, "load_p99": 8.0,
        "loads_sha256":
        "8a3fd0fc631c650b3a7092270168553d257399230abd5f690d21af8d093c3d6a",
    },
    ("always_go_left", "hetero_bins"): {
        "max_load": 14, "gap": 6.8984375, "load_p50": 6.5, "load_p99": 14.0,
        "loads_sha256":
        "4469a17fa9cd2f4d60a06d68dfce986e131fb9702b34c36ac5f4fee98e93c069",
    },
    ("always_go_left", "multi_tenant"): {
        "max_load": 7, "gap": 0.62890625, "load_p50": 6.0, "load_p99": 7.0,
        "loads_sha256":
        "6aa67d16889ff42a29656fc0a63bd3487385a4bf6018a055bd4e38ce2e0f728b",
    },
}

#: workload -> pinned stats for two_choice at n_bins=4096, items=100_000
#: (paper-scale sanity of the same derivations; slow-marked).
LARGE_PINS = {
    "zipf_items": {
        "max_load": 4, "gap": 2.228271484375, "load_p99": 4.0,
        "loads_sha256":
        "a5f60e3f881b0a31342fd51ea05c1541222ba190cfc61262dd6b969969f70a85",
    },
    "adversarial_burst": {
        "max_load": 15, "gap": 2.79296875, "load_p99": 14.0,
        "loads_sha256":
        "4c2f6bbc593db3f4b6e651cb3ab03d49ceff49e148b91bdbeb598d7dbb8e9523",
    },
    "diurnal": {
        "max_load": 24, "gap": 2.038330078125, "load_p99": 24.0,
        "loads_sha256":
        "1eafb89de41d759dbcec8715a07fca002216d3c64b26dd8347f7722dbc17f87d",
    },
    "hetero_bins": {
        "max_load": 44, "gap": 22.038330078125, "load_p99": 39.0,
        "loads_sha256":
        "9b34ed12c45a63c15e1be9f3da80033157efe16e4eed2391d17beed4b094676c",
    },
    "multi_tenant": {
        "max_load": 22, "gap": 2.48681640625, "load_p99": 21.0,
        "loads_sha256":
        "09eec22cc8007ab0dca25e1a837ec7925e098a43f0edc48fb3118302c40bfbf8",
    },
}

#: The large runs widen zipf's key universe so repeats stay informative.
LARGE_SCENARIO_PARAMS = dict(
    SCENARIO_PARAMS, zipf_items={"exponent": 1.2, "universe": 16384}
)

#: The topology-aware schemes streamed through the zone-tagged workload at
#: the same pinned seeds (n_bins=256, items=2000, spec seed 1, workload
#: seed 5); the cross-zone fractions pin the locality behaviour itself,
#: not just the final load vector.
TOPOLOGY_PINS = {
    "hierarchical_always_go_left": {
        "scheme_params": {"topology": "quad_rack"},
        "workload_params": {"zones": 2, "racks_per_zone": 2},
        "stats": {
            "max_load": 9, "gap": 1.1875,
            "cross_zone_probe_fraction": 0.5,
            "cross_zone_place_fraction": 0.509,
            "loads_sha256":
            "7655dbfe19f773e9d6bf2fed37377cfce1c2f63c4be3757cfbcaa221423e1ea2",
        },
    },
    "locality_two_choice": {
        "scheme_params": {"bias": 0.5, "threshold": 1, "topology": "dual_zone"},
        "workload_params": {"zones": 2, "racks_per_zone": 1},
        "stats": {
            "max_load": 10, "gap": 2.1875,
            "cross_zone_probe_fraction": 0.2505,
            "cross_zone_place_fraction": 0.0595,
            "loads_sha256":
            "cdb90963ba5646d9b58283652db55f5218226635ad3622f7869e51a6c7a6bb35",
        },
    },
}


def _stream_stats(scheme, scheme_params, workload, workload_params,
                  n_bins, items):
    spec = SchemeSpec(
        scheme=scheme,
        params={"n_bins": n_bins, "n_balls": items, **scheme_params},
        seed=1,
    )
    return stream_workload(
        spec, items=items, workload_seed=5,
        workload=workload, workload_params=workload_params,
    ).stats


@pytest.mark.parametrize(
    "scheme,workload", sorted(PINS),
    ids=[f"{scheme}-{workload}" for scheme, workload in sorted(PINS)],
)
def test_scenario_stream_reproduces_the_pinned_distribution(scheme, workload):
    stats = _stream_stats(
        scheme, SCHEME_PARAMS[scheme], workload, SCENARIO_PARAMS[workload],
        n_bins=256, items=2000,
    )
    expected = PINS[(scheme, workload)]
    observed = {key: stats[key] for key in expected}
    assert observed == expected


@pytest.mark.slow
@pytest.mark.parametrize("workload", sorted(LARGE_PINS))
def test_scenario_stream_reproduces_the_pinned_distribution_at_scale(workload):
    stats = _stream_stats(
        "two_choice", {}, workload, LARGE_SCENARIO_PARAMS[workload],
        n_bins=4096, items=100_000,
    )
    expected = LARGE_PINS[workload]
    observed = {key: stats[key] for key in expected}
    assert observed == expected


@pytest.mark.parametrize("scheme", sorted(TOPOLOGY_PINS))
def test_topology_stream_reproduces_the_pinned_distribution(scheme):
    pin = TOPOLOGY_PINS[scheme]
    stats = _stream_stats(
        scheme, pin["scheme_params"], "topology_aware",
        pin["workload_params"], n_bins=256, items=2000,
    )
    expected = pin["stats"]
    observed = {key: stats[key] for key in expected}
    assert observed == expected


@pytest.mark.parametrize("scheme", sorted(TOPOLOGY_PINS))
@pytest.mark.parametrize("engine", ["scalar", "vectorized"])
def test_topology_stream_is_engine_independent(scheme, engine):
    pin = TOPOLOGY_PINS[scheme]
    spec = SchemeSpec(
        scheme=scheme,
        params={"n_bins": 256, "n_balls": 2000, **pin["scheme_params"]},
        seed=1,
        engine=engine,
    )
    stats = stream_workload(
        spec, items=2000, workload_seed=5,
        workload="topology_aware", workload_params=pin["workload_params"],
    ).stats
    assert stats["loads_sha256"] == pin["stats"]["loads_sha256"]
    assert (
        stats["cross_zone_probe_fraction"]
        == pin["stats"]["cross_zone_probe_fraction"]
    )


def test_hetero_bins_capacities_change_the_allocation():
    """The capacity profile must actually reach the load comparison —
    a hetero_bins stream and a plain uniform stream of the same size
    must place differently."""
    hetero = _stream_stats(
        "two_choice", {}, "hetero_bins", {"spread": 4.0}, 256, 2000
    )
    uniform = _stream_stats(
        "two_choice", {}, "uniform", {}, 256, 2000
    )
    assert hetero["loads_sha256"] != uniform["loads_sha256"]
