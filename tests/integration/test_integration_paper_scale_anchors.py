"""Paper-scale anchor cells of Table 1 that are cheap enough for CI.

Most full-scale cells are expensive because the number of rounds is n/k, but
the large-k cells run in well under a second each even at the paper's
n = 3·2^16.  These tests reproduce those cells at the paper's exact problem
size and compare against the published values — the strongest direct check
of the reproduction.
"""

from __future__ import annotations

import pytest

from repro.experiments.table1 import PAPER_TABLE1, TABLE1_N, table1_cell


def _observed(k: int, d: int, trials: int = 3, seed: int = 7) -> set:
    cell = table1_cell(n=TABLE1_N, k=k, d=d, trials=trials, seed=seed)
    return set(cell.observed)


class TestPaperScaleAnchors:
    def test_64_65_cell(self):
        # Paper reports 5.  Allow one ball of slack on either side because we
        # run fewer trials than the paper's ten.
        observed = _observed(64, 65)
        paper = set(PAPER_TABLE1[(64, 65)])
        assert observed <= {value for p in paper for value in (p - 1, p, p + 1)}

    def test_128_193_cell_matches_exactly(self):
        # Paper reports 2 — and highlights that (128, 193) matches (1, 193).
        assert _observed(128, 193) == set(PAPER_TABLE1[(128, 193)])

    def test_96_193_cell_matches_exactly(self):
        assert _observed(96, 193) == set(PAPER_TABLE1[(96, 193)])

    def test_192_193_cell(self):
        # Paper reports {5, 6}.
        observed = _observed(192, 193)
        assert observed <= set(PAPER_TABLE1[(192, 193)]) | {4, 7}
        assert max(observed) >= 5

    def test_48_49_cell(self):
        observed = _observed(48, 49)
        paper = set(PAPER_TABLE1[(48, 49)])
        assert observed <= {value for p in paper for value in (p - 1, p, p + 1)}

    def test_24_25_cell(self):
        observed = _observed(24, 25)
        paper = set(PAPER_TABLE1[(24, 25)])
        assert observed <= {value for p in paper for value in (p - 1, p, p + 1)}

    def test_32_65_cell_is_two(self):
        # A wide-gap cell: the paper reports 2 and the reproduction must too.
        assert _observed(32, 65) == {2}

    def test_near_diagonal_worse_than_wide_gap_at_paper_scale(self):
        # Structural comparison across two full-scale cells.
        near_diagonal = max(_observed(64, 65, trials=2))
        wide_gap = max(_observed(64, 193, trials=2))
        assert wide_gap < near_diagonal
