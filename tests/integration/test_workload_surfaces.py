"""Cross-surface workload equivalence harness.

The workload contract (:mod:`repro.workloads`) promises that one
``(workload, params, seed)`` triple yields the byte-identical event stream
on every consuming surface:

* the registry itself (``generate_events``),
* the legacy online bridge (``repro.online.trace.generate_workload_events``),
* the loadgen's request builder (``repro.serve.loadgen.build_loadgen_events``),
* the simulation-side re-export (``repro.simulation.workloads.workload_events``),
* and the trace a ``repro stream --workload ...`` run records to disk.

This module is that promise as a test, plus the PR-8 byte-compatibility
lock: an inlined copy of the pre-registry ``generate_workload_events``
implementation must keep matching the shim for every legacy kwarg spelling.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

import numpy as np
import pytest

from repro.api import SchemeSpec
from repro.online import trace
from repro.serve.loadgen import build_loadgen_events
from repro.simulation import workloads as simulation_workloads
from repro.workloads import available_workloads, generate_events

#: One representative non-default parameterization per registered scenario.
SCENARIOS = [
    ("uniform", {"arrival_process": "mmpp", "arrival_rate": 500.0,
                 "churn": 0.15}),
    ("zipf_items", {"exponent": 1.2, "universe": 64}),
    ("adversarial_burst", {"burst": 16, "attack": 0.5}),
    ("diurnal", {"period": 30.0, "amplitude": 0.6, "churn": 0.1}),
    ("hetero_bins", {"spread": 4.0, "churn": 0.1}),
    ("multi_tenant", {"tenants": 3, "churn": 0.2}),
    ("topology_aware", {"zones": 2, "racks_per_zone": 2, "churn": 0.1}),
]

ITEMS = 400


def test_scenario_table_covers_the_whole_registry():
    """A new registration must be added to SCENARIOS to merge."""
    assert sorted(name for name, _ in SCENARIOS) == sorted(available_workloads())


class TestEverySurfaceDerivesTheSameStream:
    @pytest.mark.parametrize("name,params", SCENARIOS,
                             ids=[name for name, _ in SCENARIOS])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_registry_bridge_loadgen_and_simulation_agree(
        self, name, params, seed
    ):
        reference = generate_events(name, ITEMS, params, seed)
        assert len([e for e in reference if e["op"] == "place"]) == ITEMS

        bridged = trace.generate_workload_events(
            ITEMS, seed=seed, workload=name, workload_params=params
        )
        loadgen_stream = build_loadgen_events(
            ITEMS, seed=seed, workload=name, workload_params=params
        )
        simulated = simulation_workloads.workload_events(
            name, ITEMS, params, seed
        )
        assert bridged == reference
        assert loadgen_stream == reference
        assert simulated == reference

    @pytest.mark.parametrize("name,params", SCENARIOS,
                             ids=[name for name, _ in SCENARIOS])
    def test_recorded_stream_trace_carries_the_registry_events(
        self, name, params, tmp_path
    ):
        """``repro stream --workload ... --record`` writes the registry
        stream verbatim (events round-trip through canonical JSON)."""
        reference = generate_events(name, ITEMS, params, seed=7)
        path = tmp_path / "trace.jsonl"
        # topology_aware's binder injects a topology= param, which only the
        # topology-aware schemes accept.
        scheme = "locality_two_choice" if name == "topology_aware" else "two_choice"
        trace.stream_workload(
            SchemeSpec(scheme=scheme,
                       params={"n_bins": 64, "n_balls": ITEMS}, seed=1),
            items=ITEMS,
            workload_seed=7,
            workload=name,
            workload_params=params,
            record=path,
        )
        header, recorded = trace.read_trace(path)
        assert recorded == json.loads(json.dumps(reference))
        if name == "hetero_bins":
            assert "capacities" in header.params

    def test_streams_differ_across_seeds_and_params(self):
        # Determinism must not collapse into constancy: the seed and the
        # parameters both have to reach the stream.
        base = generate_events("zipf_items", ITEMS, {"universe": 64}, seed=0)
        assert generate_events("zipf_items", ITEMS, {"universe": 64}, 1) != base
        assert generate_events(
            "zipf_items", ITEMS, {"universe": 64, "exponent": 2.5}, 0
        ) != base


# ----------------------------------------------------------------------
# PR-8 byte-compatibility lock
# ----------------------------------------------------------------------
def _legacy_reference(
    items: int,
    arrival_process: str = "none",
    arrival_rate: float = 1000.0,
    burstiness: float = 4.0,
    switch_prob: float = 0.1,
    churn: float = 0.0,
    seed: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """The pre-registry ``generate_workload_events``, inlined verbatim.

    Frozen here as the byte-compatibility oracle: recorded traces and
    seeded runs from before the workload registry must replay unchanged,
    so the `uniform` entry's derivation may never drift from this.
    """
    if items < 0:
        raise ValueError(f"items must be non-negative, got {items}")
    if not 0.0 <= churn <= 1.0:
        raise ValueError(f"churn must lie in [0, 1], got {churn}")
    times: Optional[np.ndarray] = None
    if arrival_process != "none":
        from repro.simulation.workloads import sample_arrival_times

        times = sample_arrival_times(
            items,
            arrival_rate=arrival_rate,
            arrival_process=arrival_process,
            burstiness=burstiness,
            switch_prob=switch_prob,
            seed=seed,
        )
    rng = np.random.default_rng(seed)
    if times is not None:
        rng = np.random.default_rng(np.random.SeedSequence(seed).spawn(1)[0])
    events: List[Dict[str, Any]] = []
    live: List[int] = []
    for index in range(items):
        event: Dict[str, Any] = {"op": "place", "item": index}
        if times is not None:
            event["t"] = float(times[index])
        events.append(event)
        live.append(index)
        if churn > 0.0 and live and float(rng.random()) < churn:
            victim_position = int(rng.integers(0, len(live)))
            victim = live[victim_position]
            live[victim_position] = live[-1]
            live.pop()
            removal: Dict[str, Any] = {"op": "remove", "item": victim}
            if times is not None:
                removal["t"] = float(times[index])
            events.append(removal)
    return events


class TestLegacySpellingsStayByteIdentical:
    LEGACY_CASES = [
        {},
        {"churn": 0.3},
        {"arrival_process": "poisson", "arrival_rate": 250.0},
        {"arrival_process": "mmpp", "arrival_rate": 500.0,
         "burstiness": 6.0, "switch_prob": 0.2, "churn": 0.15},
    ]

    @pytest.mark.parametrize("kwargs", LEGACY_CASES,
                             ids=["plain", "churn", "poisson", "mmpp"])
    @pytest.mark.parametrize("seed", [0, 11])
    def test_shim_matches_the_pre_registry_implementation(self, kwargs, seed):
        expected = _legacy_reference(ITEMS, seed=seed, **kwargs)
        assert trace.generate_workload_events(
            ITEMS, seed=seed, **kwargs
        ) == expected

    def test_unseeded_plain_stream_is_the_identity_sequence(self):
        events = trace.generate_workload_events(10)
        assert events == [{"op": "place", "item": i} for i in range(10)]
