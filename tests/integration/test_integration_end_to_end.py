"""End-to-end integration tests across subpackages.

These exercise the same flows as the examples: core process -> analysis ->
experiment recipe -> rendered table, and the two application substrates fed
by the shared workload generators.
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis import classify_regime, predicted_max_load
from repro.cluster import BatchSamplingScheduler, PerTaskDChoiceScheduler, simulate_cluster
from repro.experiments import run_table1, run_tradeoff
from repro.simulation import (
    ExperimentRunner,
    KDGridSweep,
    SeedTree,
    file_population,
    poisson_job_trace,
)
from repro.storage import KDChoicePlacement, PerReplicaDChoicePlacement, StorageSystem


class TestPackageSurface:
    def test_version_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports_work_together(self):
        result = repro.simulate(
            repro.SchemeSpec(
                scheme="kd_choice",
                params={"n_bins": 512, "k": 4, "d": 8},
                seed=1,
            )
        )
        regime = classify_regime(4, 8, 512)
        prediction = predicted_max_load(4, 8, 512)
        assert regime.name == "dk_constant"
        assert result.max_load <= prediction + 3

    def test_all_declared_names_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestSweepToTablePipeline:
    def test_grid_sweep_feeds_result_table(self):
        sweep = KDGridSweep(n=256, k_values=[1, 2], d_values=[2, 4])
        table = sweep.run_table(trials=2, seed=0, title="demo")
        text = table.to_text()
        assert "demo" in text
        assert len(table) == 4  # (1,2), (1,4), (2,2), (2,4) minus none invalid
        assert all(row["max_load_mean"] >= 1 for row in table)

    def test_runner_reproducibility_across_pipeline(self):
        tree = SeedTree(5)
        runner_a = ExperimentRunner(trials=3, seed=tree.integer_seed())
        tree = SeedTree(5)
        runner_b = ExperimentRunner(trials=3, seed=tree.integer_seed())
        factory = lambda s: repro.simulate(  # noqa: E731
            repro.SchemeSpec(
                scheme="kd_choice", params={"n_bins": 256, "k": 2, "d": 4}, seed=s
            )
        )
        assert (
            runner_a.run(factory).metric_values("max_load")
            == runner_b.run(factory).metric_values("max_load")
        )

    def test_table1_recipe_round_trip(self):
        result = run_table1(n=512, trials=2, k_values=[1, 4], d_values=[2, 5, 9], seed=3)
        text = result.to_text()
        for (k, d), cell in result.cells.items():
            assert cell.text in text

    def test_tradeoff_recipe_includes_adaptive_comparators(self):
        points = run_tradeoff(n=512, trials=1, seed=4)
        names = {p.scheme for p in points}
        assert "adaptive-threshold" in names
        assert "adaptive-two-phase" in names


class TestApplicationPipelines:
    def test_cluster_pipeline_with_shared_trace(self):
        trace = poisson_job_trace(n_jobs=80, arrival_rate=3.0, tasks_per_job=8, seed=9)
        batch = simulate_cluster(32, BatchSamplingScheduler(probe_ratio=2.0), trace, seed=1)
        per_task = simulate_cluster(32, PerTaskDChoiceScheduler(d=2), trace, seed=1)
        # Same workload, same probe budget per task.
        assert batch.n_tasks == per_task.n_tasks == 640
        assert batch.messages == per_task.messages
        # Batch sampling should not lose by much on mean response time.
        assert batch.mean_response <= per_task.mean_response * 1.25

    def test_storage_pipeline_balance_and_cost(self):
        population = file_population(n_files=1500, replicas=3, seed=2)
        kd = StorageSystem(128, KDChoicePlacement(extra_probes=1), seed=3)
        two = StorageSystem(128, PerReplicaDChoicePlacement(d=2), seed=3)
        kd.store_population(population)
        two.store_population(population)
        kd_report, two_report = kd.report(), two.report()
        # (k, k+1)-choice uses ~(k+1)/2k of two-choice's probes...
        assert kd_report.placement_messages < two_report.placement_messages
        # ...while keeping the imbalance comparable (within 2 replicas).
        assert kd_report.max_load <= two_report.max_load + 2

    def test_cluster_and_storage_share_rng_infrastructure(self):
        tree = SeedTree(0)
        trace = poisson_job_trace(
            n_jobs=20, arrival_rate=2.0, tasks_per_job=2, rng=tree.generator()
        )
        system = StorageSystem(16, KDChoicePlacement(), rng=tree.generator())
        system.store_population(
            file_population(n_files=10, replicas=2, rng=tree.generator())
        )
        report = simulate_cluster(8, BatchSamplingScheduler(), trace, seed=tree.integer_seed())
        assert report.n_jobs == 20
        assert len(system.files) == 10
