"""Integration tests: end-to-end checks of the paper's qualitative claims.

These tests run the public API exactly the way the examples and benches do
and assert the *shape* of the paper's results: orderings, crossovers and
rough magnitudes, not exact numbers.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.bounds import theorem1_leading_term
from repro.analysis.recurrences import LayeredInduction
from repro.api import SchemeSpec, simulate
from repro.core.metrics import nu


# Spec-API wrappers with the historical call shape, so the assertions below
# read the way the paper states them (the deprecated top-level run_* shims
# are gone from the test suite; DeprecationWarning is an error under pytest).
def run_kd_choice(n_bins, k, d, n_balls=None, seed=None):
    params = {"n_bins": n_bins, "k": k, "d": d}
    if n_balls is not None:
        params["n_balls"] = n_balls
    return simulate(SchemeSpec(scheme="kd_choice", params=params, seed=seed))


def run_d_choice(n_bins, d, seed=None):
    return simulate(
        SchemeSpec(scheme="d_choice", params={"n_bins": n_bins, "d": d}, seed=seed)
    )


def run_single_choice(n_bins, seed=None):
    return simulate(
        SchemeSpec(scheme="single_choice", params={"n_bins": n_bins}, seed=seed)
    )


N = 3 * 2 ** 12  # scaled-down instance used throughout the integration tests


class TestTheorem1Shape:
    def test_kd_choice_between_single_and_two_choice(self):
        """(k, d)-choice with moderate k interpolates the two classics."""
        single = run_single_choice(N, seed=1).max_load
        two = run_d_choice(N, d=2, seed=1).max_load
        middle = run_kd_choice(N, k=48, d=49, seed=1).max_load
        assert two <= middle <= single

    def test_small_k_matches_standard_d_choice(self):
        """For k = 1 the process *is* Greedy[d]."""
        a = run_kd_choice(N, k=1, d=4, seed=3).max_load
        b = run_d_choice(N, d=4, seed=3).max_load
        assert abs(a - b) <= 1

    def test_doubly_logarithmic_growth_in_constant_regime(self):
        """Max load grows extremely slowly with n when d_k = O(1)."""
        small = run_kd_choice(1 << 10, k=4, d=8, seed=5).max_load
        large = run_kd_choice(1 << 15, k=4, d=8, seed=5).max_load
        assert large - small <= 1

    def test_growing_dk_term_matters_when_k_close_to_d(self):
        """(k, k+1)-choice with large k has a visibly larger max load than
        (k, 2k)-choice, as predicted by the extra ln d_k / ln ln d_k term."""
        k = 64
        tight = run_kd_choice(N, k=k, d=k + 1, seed=7).max_load
        wide = run_kd_choice(N, k=k, d=2 * k, seed=7).max_load
        assert tight > wide

    def test_leading_term_orders_configurations_correctly(self):
        """The theory's leading term predicts the measured ordering."""
        configs = [(1, 2), (16, 32), (64, 65)]
        predictions = [theorem1_leading_term(k, d, N) for k, d in configs]
        measured = [run_kd_choice(N, k=k, d=d, seed=11).max_load for k, d in configs]
        assert sorted(range(3), key=lambda i: predictions[i])[-1] == int(np.argmax(measured))


class TestTable1Anchors:
    """Spot-check a few Table 1 cells at the paper's own n (marked slow-ish
    but still tractable: a single trial per cell)."""

    def test_8_9_choice_close_to_two_choice(self):
        two_choice = run_kd_choice(N, k=1, d=2, seed=13).max_load
        kd = run_kd_choice(N, k=8, d=9, seed=13).max_load
        assert abs(kd - two_choice) <= 2

    def test_wide_d_gives_max_load_two(self):
        assert run_kd_choice(N, k=3, d=17, seed=17).max_load == 2

    def test_128_193_choice_outperforms_single_choice_dramatically(self):
        single = run_single_choice(N, seed=19).max_load
        kd = run_kd_choice(N, k=128, d=193, seed=19).max_load
        assert kd <= 3
        assert single >= kd + 2


class TestTheorem2Shape:
    def test_gap_independent_of_total_load(self):
        n = 1 << 11
        gaps = []
        for factor in (1, 4, 16):
            result = run_kd_choice(n, k=2, d=4, n_balls=factor * n, seed=23)
            gaps.append(result.gap)
        assert max(gaps) - min(gaps) <= 3.0

    def test_sandwich_ordering_of_gaps(self):
        n = 1 << 11
        m = 8 * n
        lower = run_kd_choice(n, k=1, d=3, n_balls=m, seed=29).gap   # A(1, d-k+1)
        middle = run_kd_choice(n, k=2, d=4, n_balls=m, seed=29).gap  # A(2, 4)
        upper = run_kd_choice(n, k=1, d=2, n_balls=m, seed=29).gap   # A(1, floor(d/k))
        # Stochastic claims on single runs: allow one ball of slack.
        assert lower <= middle + 1.0
        assert middle <= upper + 1.0


class TestLayeredInductionPredictions:
    def test_layer_count_matches_induction_prediction(self):
        """Following the proof of Theorem 4: let y0 be the smallest height
        with ν_{y0} ≤ β0; the number of further layers needed for ν to drop
        below ~6 ln n must not exceed the predicted i* by more than a small
        constant."""
        import math

        k, d = 4, 8
        layered = LayeredInduction.compute(k, d, N)
        result = run_kd_choice(N, k=k, d=d, seed=31)

        y0 = next(y for y in range(0, result.max_load + 1) if nu(result, y) <= layered.beta0)
        cutoff = 6 * math.log(N)
        layers = 0
        while nu(result, y0 + layers) > cutoff and layers < 50:
            layers += 1
        assert layers <= layered.i_star_predicted + 2
        assert result.max_load <= y0 + layers + 2

    def test_i_star_plus_constant_bounds_max_load(self):
        k, d = 4, 8
        layered = LayeredInduction.compute(k, d, N)
        result = run_kd_choice(N, k=k, d=d, seed=37)
        assert result.max_load <= layered.i_star_predicted + 4


class TestMessageCostClaims:
    def test_d_equals_2k_costs_two_messages_per_ball(self):
        k = round(math.log(N) ** 2)
        result = run_kd_choice(N, k=k, d=2 * k, seed=41)
        assert result.messages_per_ball == pytest.approx(2.0, abs=0.1)
        assert result.max_load <= 3

    def test_d_equals_k_plus_log_costs_just_over_one_message_per_ball(self):
        k = round(math.log(N) ** 2)
        extra = round(math.log(N))
        result = run_kd_choice(N, k=k, d=k + extra, seed=43)
        assert result.messages_per_ball < 1.25
        assert result.max_load <= run_single_choice(N, seed=43).max_load

    def test_storage_configuration_halves_two_choice_cost(self):
        k = round(math.log(N))
        kd = run_kd_choice(N, k=k, d=k + 1, seed=47)
        two_choice = run_d_choice(N, d=2, seed=47)
        assert kd.messages <= 0.6 * two_choice.messages
        assert kd.max_load <= two_choice.max_load + 2
