"""Property-based tests for the cluster and storage substrates."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cluster.schedulers import BatchSamplingScheduler, PerTaskDChoiceScheduler, RandomScheduler
from repro.cluster.simulator import simulate_cluster
from repro.simulation.workloads import file_population, poisson_job_trace
from repro.storage.placement import KDChoicePlacement, PerReplicaDChoicePlacement, RandomPlacement
from repro.storage.system import StorageSystem


@st.composite
def cluster_scenarios(draw):
    n_workers = draw(st.integers(min_value=2, max_value=16))
    tasks_per_job = draw(st.integers(min_value=1, max_value=6))
    n_jobs = draw(st.integers(min_value=1, max_value=30))
    seed = draw(st.integers(min_value=0, max_value=2 ** 20))
    scheduler = draw(
        st.sampled_from(
            [
                RandomScheduler(),
                PerTaskDChoiceScheduler(d=2),
                BatchSamplingScheduler(probe_ratio=2.0),
            ]
        )
    )
    return n_workers, tasks_per_job, n_jobs, seed, scheduler


class TestClusterProperties:
    @given(scenario=cluster_scenarios())
    @settings(max_examples=25, deadline=None)
    def test_every_task_completes_and_times_are_causal(self, scenario):
        n_workers, tasks_per_job, n_jobs, seed, scheduler = scenario
        trace = poisson_job_trace(
            n_jobs=n_jobs, arrival_rate=2.0, tasks_per_job=tasks_per_job, seed=seed
        )
        simulator_report = simulate_cluster(n_workers, scheduler, trace, seed=seed + 1)
        assert simulator_report.n_jobs == n_jobs
        assert simulator_report.n_tasks == n_jobs * tasks_per_job
        # Response times can never be smaller than the shortest service time
        # (up to floating-point rounding in the mean).
        min_duration = min(min(job.task_durations) for job in trace)
        assert simulator_report.mean_response >= min_duration - 1e-9
        assert simulator_report.mean_task_wait >= 0.0
        assert simulator_report.messages > 0

    @given(scenario=cluster_scenarios())
    @settings(max_examples=15, deadline=None)
    def test_reports_deterministic_for_fixed_seed(self, scenario):
        n_workers, tasks_per_job, n_jobs, seed, scheduler = scenario
        trace = poisson_job_trace(
            n_jobs=n_jobs, arrival_rate=2.0, tasks_per_job=tasks_per_job, seed=seed
        )
        a = simulate_cluster(n_workers, type(scheduler)(), trace, seed=7)
        b = simulate_cluster(n_workers, type(scheduler)(), trace, seed=7)
        assert a.mean_response == b.mean_response
        assert a.messages == b.messages


@st.composite
def storage_scenarios(draw):
    n_servers = draw(st.integers(min_value=4, max_value=64))
    n_files = draw(st.integers(min_value=1, max_value=60))
    replicas = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2 ** 20))
    policy = draw(
        st.sampled_from(
            [
                RandomPlacement(),
                PerReplicaDChoicePlacement(d=2),
                KDChoicePlacement(extra_probes=1),
            ]
        )
    )
    return n_servers, n_files, replicas, seed, policy


class TestStorageProperties:
    @given(scenario=storage_scenarios())
    @settings(max_examples=30, deadline=None)
    def test_replica_conservation_and_report_consistency(self, scenario):
        n_servers, n_files, replicas, seed, policy = scenario
        system = StorageSystem(n_servers=n_servers, placement=type(policy)(), seed=seed)
        system.store_population(file_population(n_files, replicas=replicas, seed=seed))
        report = system.report()
        assert report.n_replicas == n_files * replicas
        assert int(system.load_vector().sum()) == n_files * replicas
        assert report.max_load >= report.mean_load
        assert report.gap >= 0
        # Every file is readable while every server is alive.
        assert all(system.read_file(f) for f in system.files)

    @given(scenario=storage_scenarios())
    @settings(max_examples=20, deadline=None)
    def test_lookup_cost_at_least_replica_count(self, scenario):
        n_servers, n_files, replicas, seed, policy = scenario
        system = StorageSystem(n_servers=n_servers, placement=type(policy)(), seed=seed)
        system.store_population(file_population(n_files, replicas=replicas, seed=seed))
        for file_id in system.files:
            assert system.lookup_cost(file_id) >= replicas
