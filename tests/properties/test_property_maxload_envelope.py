"""Statistical regression tests: max-load gap stays in the paper's envelope.

Theorem 1 predicts a maximum load of ``ln ln n / ln(d - k + 1) + O(1)`` for
the ``d_k = O(1)`` regime, and the heavily loaded case (Theorem 2) shifts
the same gap on top of the average ``m / n``.  These tests pin seeds, so
they are deterministic regressions, and use *loose* constants (a factor ~3
plus an additive constant) so they only fire when a code change genuinely
breaks the allocation quality — e.g. an engine change that silently stops
selecting the least-loaded bins — not on ordinary seed-to-seed noise.

Both engines are exercised; the equivalence harness
(``tests/core/test_engine_equivalence.py``) already proves them identical,
so a failure here means the *process* regressed, not one engine.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.api import SchemeSpec, simulate

SEEDS = (0, 1, 2)


def envelope(n: int, k: int, d: int) -> float:
    """Loose O(log log n / log(d - k + 1)) bound on the gap above average."""
    if d - k + 1 <= 1:  # single-choice-like: no multi-choice guarantee
        return 3.0 * math.log(n) / math.log(math.log(n)) + 4.0
    return (
        3.0 * math.log(max(math.log(n), 2.0)) / math.log(d - k + 1 + 1e-12) + 4.0
    )


def kd_gap(n, k, d, n_balls, seed, engine):
    spec = SchemeSpec(
        scheme="kd_choice",
        params={"n_bins": n, "k": k, "d": d, "n_balls": n_balls},
        seed=seed,
        engine=engine,
    )
    result = simulate(spec)
    return result.max_load - n_balls / n


class TestPlainKDChoiceEnvelope:
    @pytest.mark.parametrize("engine", ["scalar", "vectorized"])
    @pytest.mark.parametrize("k,d", [(1, 2), (2, 4), (4, 8), (1, 8), (8, 9)])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_light_load_gap_within_envelope(self, k, d, seed, engine):
        n = 1 << 13
        gap = kd_gap(n, k, d, n, seed, engine)
        assert 1.0 <= gap + 1.0  # max load is at least 1 when m >= 1
        assert gap <= envelope(n, k, d), (
            f"(k={k}, d={d}) gap {gap:.2f} exceeds the Theorem 1 envelope "
            f"{envelope(n, k, d):.2f}"
        )

    @pytest.mark.parametrize("engine", ["scalar", "vectorized"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_heavy_load_gap_within_envelope(self, seed, engine):
        # Theorem 2 flavour: m = 8n; the gap above m/n stays in the same
        # envelope (k < d <= 2k regime uses d - k + 1 = 5).
        n, k, d = 1 << 11, 4, 8
        gap = kd_gap(n, k, d, 8 * n, seed, engine)
        assert gap <= envelope(n, k, d) + 2.0

    @pytest.mark.slow
    @pytest.mark.parametrize("engine", ["scalar", "vectorized"])
    @pytest.mark.parametrize("k,d", [(1, 2), (4, 8)])
    def test_large_n_gap_within_envelope(self, k, d, engine):
        n = 1 << 18
        gap = kd_gap(n, k, d, n, 0, engine)
        assert gap <= envelope(n, k, d)


class TestWeightedEnvelope:
    @pytest.mark.parametrize("engine", ["scalar", "vectorized"])
    @pytest.mark.parametrize("weights", ["constant", "exponential"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_weighted_gap_within_scaled_envelope(self, weights, seed, engine):
        # Weighted balls with mean weight 1: the weighted gap obeys the same
        # doubly-logarithmic envelope, scaled by a constant that absorbs the
        # weight fluctuations (exponential tails are light).
        n, k, d = 1 << 12, 4, 8
        spec = SchemeSpec(
            scheme="weighted_kd_choice",
            params={"n_bins": n, "k": k, "d": d, "weights": weights},
            seed=seed,
            engine=engine,
        )
        result = simulate(spec)
        weighted_gap = result.extra["weighted_gap"]
        assert weighted_gap <= 3.0 * envelope(n, k, d), (
            f"weighted ({weights}) gap {weighted_gap:.2f} exceeds "
            f"{3.0 * envelope(n, k, d):.2f}"
        )

    @pytest.mark.slow
    @pytest.mark.parametrize("engine", ["scalar", "vectorized"])
    def test_large_n_weighted_gap(self, engine):
        n, k, d = 1 << 16, 4, 8
        spec = SchemeSpec(
            scheme="weighted_kd_choice",
            params={"n_bins": n, "k": k, "d": d, "weights": "exponential"},
            seed=0,
            engine=engine,
        )
        result = simulate(spec)
        assert result.extra["weighted_gap"] <= 3.0 * envelope(n, k, d)


class TestEnginesAgreeOnEnvelopeCases:
    """The envelope cases double as spec-level equivalence anchors."""

    @pytest.mark.parametrize("k,d", [(1, 2), (4, 8)])
    def test_metrics_identical_across_engines(self, k, d):
        n = 1 << 12
        results = {
            engine: simulate(
                SchemeSpec(
                    scheme="kd_choice",
                    params={"n_bins": n, "k": k, "d": d},
                    seed=7,
                    engine=engine,
                )
            )
            for engine in ("scalar", "vectorized")
        }
        assert np.array_equal(results["scalar"].loads, results["vectorized"].loads)
        assert results["scalar"].messages == results["vectorized"].messages
