"""Property-based tests for the weighted, stale and dynamic extensions."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.dynamic import DynamicKDChoiceProcess
from repro.core.stale import run_stale_kd_choice
from repro.core.weighted import run_weighted_kd_choice


@st.composite
def kd_small(draw):
    n_bins = draw(st.integers(min_value=4, max_value=96))
    d = draw(st.integers(min_value=1, max_value=min(n_bins, 12)))
    k = draw(st.integers(min_value=1, max_value=d))
    seed = draw(st.integers(min_value=0, max_value=2 ** 20))
    return n_bins, k, d, seed


class TestWeightedProperties:
    @given(params=kd_small(), weights=st.sampled_from(["constant", "exponential", "pareto"]))
    @settings(max_examples=30, deadline=None)
    def test_ball_and_weight_conservation(self, params, weights):
        n_bins, k, d, seed = params
        result = run_weighted_kd_choice(n_bins, k, d, weights=weights, seed=seed)
        assert int(result.loads.sum()) == n_bins
        weighted = result.extra["weighted_loads"]
        assert np.all(weighted >= -1e-12)
        assert float(weighted.sum()) == float(
            np.float64(result.extra["total_weight"])
        ) or abs(float(weighted.sum()) - result.extra["total_weight"]) < 1e-6

    @given(params=kd_small())
    @settings(max_examples=20, deadline=None)
    def test_unit_weights_reduce_to_counts(self, params):
        n_bins, k, d, seed = params
        result = run_weighted_kd_choice(n_bins, k, d, weights="constant", seed=seed)
        assert np.allclose(result.extra["weighted_loads"], result.loads)


class TestStaleProperties:
    @given(
        params=kd_small(),
        stale_rounds=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=30, deadline=None)
    def test_conservation_under_any_staleness(self, params, stale_rounds):
        n_bins, k, d, seed = params
        result = run_stale_kd_choice(n_bins, k, d, stale_rounds=stale_rounds, seed=seed)
        assert int(result.loads.sum()) == n_bins
        assert result.extra["stale_rounds"] == stale_rounds
        expected_rounds = -(-n_bins // k)
        assert result.messages == expected_rounds * d


class TestDynamicProperties:
    @given(
        params=kd_small(),
        rounds=st.integers(min_value=0, max_value=128),
        departures=st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_population_accounting(self, params, rounds, departures):
        n_bins, k, d, seed = params
        process = DynamicKDChoiceProcess(
            n_bins, k, d, departures_per_round=departures, seed=seed
        )
        result = process.run(rounds=rounds, warmup_balls=n_bins)
        total = int(result.final_loads.sum())
        assert np.all(result.final_loads >= 0)
        # Arrivals add k per round; departures remove at most `departures`
        # per round (fewer when the system is empty).
        upper = n_bins + rounds * k
        lower = max(n_bins + rounds * (k - departures), 0)
        assert lower <= total <= upper
        if result.snapshots:
            assert result.snapshots[-1].total_balls == total
