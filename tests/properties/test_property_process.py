"""Property-based tests (hypothesis) for the core allocation processes."""

from __future__ import annotations

from collections import Counter

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.policies import GreedyPolicy, StrictPolicy
from repro.core.process import run_kd_choice
from repro.core.state import BinState


# Strategy: a (n_bins, k, d) triple with 1 <= k <= d <= n_bins.
@st.composite
def kd_parameters(draw):
    n_bins = draw(st.integers(min_value=4, max_value=256))
    d = draw(st.integers(min_value=1, max_value=min(n_bins, 24)))
    k = draw(st.integers(min_value=1, max_value=d))
    return n_bins, k, d


@st.composite
def policy_inputs(draw):
    n_bins = draw(st.integers(min_value=2, max_value=40))
    loads = draw(
        st.lists(st.integers(min_value=0, max_value=20), min_size=n_bins, max_size=n_bins)
    )
    d = draw(st.integers(min_value=1, max_value=12))
    samples = draw(
        st.lists(st.integers(min_value=0, max_value=n_bins - 1), min_size=d, max_size=d)
    )
    k = draw(st.integers(min_value=1, max_value=d))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31 - 1))
    return loads, samples, k, seed


class TestProcessProperties:
    @given(params=kd_parameters(), seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_ball_conservation(self, params, seed):
        n_bins, k, d = params
        result = run_kd_choice(n_bins=n_bins, k=k, d=d, seed=seed)
        assert int(result.loads.sum()) == n_bins
        assert result.loads.min() >= 0

    @given(params=kd_parameters(), seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_message_cost_formula(self, params, seed):
        n_bins, k, d = params
        result = run_kd_choice(n_bins=n_bins, k=k, d=d, seed=seed)
        expected_rounds = -(-n_bins // k)
        assert result.messages == expected_rounds * d

    @given(
        params=kd_parameters(),
        factor=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2 ** 31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_heavy_load_conservation(self, params, factor, seed):
        n_bins, k, d = params
        m = factor * n_bins
        result = run_kd_choice(n_bins=n_bins, k=k, d=d, n_balls=m, seed=seed)
        assert int(result.loads.sum()) == m
        assert result.max_load >= m // n_bins  # pigeonhole

    @given(params=kd_parameters(), seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_max_load_at_least_average_and_at_most_total(self, params, seed):
        n_bins, k, d = params
        result = run_kd_choice(n_bins=n_bins, k=k, d=d, seed=seed)
        assert result.max_load >= 1
        assert result.max_load <= n_bins


class TestPolicyProperties:
    @given(inputs=policy_inputs())
    @settings(max_examples=60, deadline=None)
    def test_strict_policy_respects_multiplicity_cap(self, inputs):
        loads, samples, k, seed = inputs
        rng = np.random.default_rng(seed)
        destinations = StrictPolicy().select(loads, samples, k, rng)
        assert len(destinations) == k
        multiplicity = Counter(samples)
        for bin_index, count in Counter(destinations).items():
            assert count <= multiplicity[bin_index]

    @given(inputs=policy_inputs())
    @settings(max_examples=60, deadline=None)
    def test_strict_policy_keeps_lowest_heights(self, inputs):
        # The multiset of heights of the k kept balls must equal the k
        # smallest heights of the d placed balls.
        loads, samples, k, seed = inputs
        rng = np.random.default_rng(seed)
        destinations = StrictPolicy().select(loads, samples, k, rng)

        working = list(loads)
        all_heights = []
        for s in samples:
            working[s] += 1
            all_heights.append(working[s])
        expected = sorted(all_heights)[:k]

        working = list(loads)
        kept_heights = []
        extra = Counter()
        # Recompute heights of the kept balls in the order they were kept,
        # accounting for multiple balls landing in the same bin.
        for b in destinations:
            extra[b] += 1
            kept_heights.append(loads[b] + extra[b])
        assert sorted(kept_heights) == expected

    @given(inputs=policy_inputs())
    @settings(max_examples=60, deadline=None)
    def test_greedy_policy_uses_sampled_bins_only(self, inputs):
        loads, samples, k, seed = inputs
        rng = np.random.default_rng(seed)
        destinations = GreedyPolicy().select(loads, samples, k, rng)
        assert len(destinations) == k
        assert set(destinations) <= set(samples)

    @given(inputs=policy_inputs())
    @settings(max_examples=40, deadline=None)
    def test_greedy_round_maximum_no_higher_than_strict(self, inputs):
        # Within a single round, greedy water-filling never produces a higher
        # post-round maximum over the sampled bins than the strict policy.
        loads, samples, k, seed = inputs
        sampled = set(samples)

        strict_state = BinState(len(loads), loads=loads)
        for b in StrictPolicy().select(loads, samples, k, np.random.default_rng(seed)):
            strict_state.place(b)
        greedy_state = BinState(len(loads), loads=loads)
        for b in GreedyPolicy().select(loads, samples, k, np.random.default_rng(seed)):
            greedy_state.place(b)

        strict_max = max(strict_state.load_of(b) for b in sampled)
        greedy_max = max(greedy_state.load_of(b) for b in sampled)
        assert greedy_max <= strict_max
