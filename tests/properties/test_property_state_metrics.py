"""Property-based tests for BinState, metrics and statistics invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.statistics import (
    confidence_interval,
    observed_value_set,
    stochastic_dominance_fraction,
    trial_statistics,
)
from repro.core import metrics
from repro.core.state import BinState

load_vectors = st.lists(
    st.integers(min_value=0, max_value=50), min_size=1, max_size=64
)


class TestStateInvariants:
    @given(loads=load_vectors)
    @settings(max_examples=60, deadline=None)
    def test_total_is_sum_of_loads(self, loads):
        state = BinState(len(loads), loads=loads)
        assert state.total_balls == sum(loads)

    @given(loads=load_vectors)
    @settings(max_examples=60, deadline=None)
    def test_nu_is_monotone_decreasing_in_y(self, loads):
        state = BinState(len(loads), loads=loads)
        values = [state.nu(y) for y in range(0, max(loads) + 2)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    @given(loads=load_vectors)
    @settings(max_examples=60, deadline=None)
    def test_mu_equals_sum_of_nu_over_levels(self, loads):
        state = BinState(len(loads), loads=loads)
        top = max(loads) + 1
        for y in range(1, top + 1):
            assert state.mu(y) == sum(state.nu(h) for h in range(y, top + 1))

    @given(loads=load_vectors)
    @settings(max_examples=60, deadline=None)
    def test_sorted_loads_is_a_permutation(self, loads):
        state = BinState(len(loads), loads=loads)
        assert sorted(state.sorted_loads().tolist()) == sorted(loads)

    @given(loads=load_vectors)
    @settings(max_examples=60, deadline=None)
    def test_prefix_sums_end_at_total(self, loads):
        state = BinState(len(loads), loads=loads)
        prefix = state.prefix_sums()
        assert prefix[-1] == sum(loads)
        assert all(prefix[i] <= prefix[i + 1] for i in range(len(prefix) - 1))

    @given(loads=load_vectors)
    @settings(max_examples=40, deadline=None)
    def test_place_then_remove_restores_state(self, loads):
        state = BinState(len(loads), loads=loads)
        original = state.loads
        state.place(0)
        state.remove(0)
        assert state.loads == original


class TestMetricInvariants:
    @given(loads=load_vectors)
    @settings(max_examples=60, deadline=None)
    def test_histogram_sums_to_bin_count(self, loads):
        histogram = metrics.load_histogram(loads)
        assert sum(histogram.values()) == len(loads)

    @given(loads=load_vectors)
    @settings(max_examples=60, deadline=None)
    def test_gap_nonnegative(self, loads):
        assert metrics.gap(loads) >= 0.0

    @given(loads=load_vectors)
    @settings(max_examples=60, deadline=None)
    def test_load_profile_sorted_and_total_preserved(self, loads):
        profile = metrics.load_profile(loads)
        assert all(profile[i] >= profile[i + 1] for i in range(len(profile) - 1))
        assert profile.sum() == sum(loads)

    @given(loads=load_vectors)
    @settings(max_examples=60, deadline=None)
    def test_height_histogram_total_is_ball_count(self, loads):
        histogram = metrics.height_histogram(loads)
        assert sum(histogram.values()) == sum(loads)

    @given(loads=load_vectors)
    @settings(max_examples=60, deadline=None)
    def test_nu_vector_matches_nu_everywhere(self, loads):
        vector = metrics.nu_vector(loads)
        for y, value in enumerate(vector):
            assert value == metrics.nu(loads, y)


values_strategy = st.lists(
    st.floats(min_value=-1000, max_value=1000, allow_nan=False), min_size=1, max_size=50
)


class TestStatisticsInvariants:
    @given(values=values_strategy)
    @settings(max_examples=60, deadline=None)
    def test_mean_between_min_and_max(self, values):
        stats = trial_statistics(values)
        assert stats.minimum <= stats.mean <= stats.maximum

    @given(values=values_strategy)
    @settings(max_examples=60, deadline=None)
    def test_confidence_interval_contains_mean(self, values):
        stats = trial_statistics(values)
        low, high = confidence_interval(values)
        assert low <= stats.mean + 1e-9
        assert high >= stats.mean - 1e-9

    @given(values=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_observed_value_set_sorted_and_unique(self, values):
        observed = observed_value_set(values)
        assert observed == sorted(set(observed))
        assert set(observed) == {int(v) for v in values}

    @given(
        sample=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=30),
        shift=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_shifted_sample_is_dominated(self, sample, shift):
        larger = [v + shift for v in sample]
        assert stochastic_dominance_fraction(sample, larger) == 1.0
