"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests that need raw randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_n() -> int:
    """A small problem size that keeps unit tests fast."""
    return 256


@pytest.fixture
def medium_n() -> int:
    """A medium problem size for statistical assertions."""
    return 3 * 2 ** 10
