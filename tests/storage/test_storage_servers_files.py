"""Unit tests for storage servers and stored-file records."""

from __future__ import annotations

import pytest

from repro.storage.files import StoredFile
from repro.storage.servers import StorageServer


class TestStorageServer:
    def test_store_and_counts(self):
        server = StorageServer(0)
        server.store(file_id=1, replica_index=0, size=2.0)
        server.store(file_id=2, replica_index=1, size=3.0)
        assert server.replica_count == 2
        assert server.bytes_stored == pytest.approx(5.0)

    def test_holds(self):
        server = StorageServer(0)
        server.store(1, 0, 1.0)
        assert server.holds(1, 0)
        assert not server.holds(1, 1)

    def test_duplicate_store_rejected(self):
        server = StorageServer(0)
        server.store(1, 0, 1.0)
        with pytest.raises(ValueError):
            server.store(1, 0, 1.0)

    def test_drop_removes_and_updates_bytes(self):
        server = StorageServer(0)
        server.store(1, 0, 2.5)
        server.drop(1, 0)
        assert server.replica_count == 0
        assert server.bytes_stored == pytest.approx(0.0)

    def test_drop_unknown_replica_rejected(self):
        with pytest.raises(KeyError):
            StorageServer(0).drop(9, 0)

    def test_fail_and_recover(self):
        server = StorageServer(0)
        server.fail()
        assert not server.alive
        with pytest.raises(RuntimeError):
            server.store(1, 0, 1.0)
        server.recover()
        server.store(1, 0, 1.0)
        assert server.replica_count == 1


class TestStoredFile:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            StoredFile(file_id=0, size=1.0, mode="mirroring")

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            StoredFile(file_id=0, size=-1.0, mode="replication")

    def test_replica_count_and_servers(self):
        stored = StoredFile(file_id=0, size=1.0, mode="replication")
        stored.placements = [(3, 0), (7, 1)]
        assert stored.replica_count == 2
        assert stored.server_ids == [3, 7]

    def test_lookup_cost_is_candidate_count(self):
        stored = StoredFile(file_id=0, size=1.0, mode="replication", candidates=[1, 2, 3])
        assert stored.lookup_cost == 3

    def test_replication_available_with_one_live_replica(self):
        stored = StoredFile(file_id=0, size=1.0, mode="replication")
        stored.placements = [(0, 0), (1, 1)]
        assert stored.is_available([True, False])
        assert not stored.is_available([False, False])

    def test_chunking_needs_every_chunk(self):
        stored = StoredFile(file_id=0, size=1.0, mode="chunking")
        stored.placements = [(0, 0), (1, 1)]
        assert stored.is_available([True, True])
        assert not stored.is_available([True, False])

    def test_unplaced_file_is_unavailable(self):
        stored = StoredFile(file_id=0, size=1.0, mode="replication")
        assert not stored.is_available([True, True])
