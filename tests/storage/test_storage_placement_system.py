"""Unit tests for placement policies, the storage system and failure handling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.workloads import FileSpec, file_population
from repro.storage.failures import availability, fail_random_servers, re_replicate
from repro.storage.placement import (
    KDChoicePlacement,
    PerReplicaDChoicePlacement,
    RandomPlacement,
)
from repro.storage.servers import StorageServer
from repro.storage.system import StorageSystem


@pytest.fixture
def rng():
    return np.random.default_rng(11)


@pytest.fixture
def servers():
    return [StorageServer(i) for i in range(16)]


class TestPlacementPolicies:
    def test_random_counts(self, servers, rng):
        decision = RandomPlacement().place(3, servers, rng)
        assert len(decision.servers) == 3
        assert decision.messages == 3

    def test_random_distinct_servers_option(self, servers, rng):
        decision = RandomPlacement(require_distinct=True).place(10, servers, rng)
        assert len(set(decision.servers)) == 10

    def test_random_distinct_impossible_rejected(self, rng):
        few = [StorageServer(i) for i in range(2)]
        with pytest.raises(ValueError):
            RandomPlacement(require_distinct=True).place(3, few, rng)

    def test_per_replica_message_cost(self, servers, rng):
        decision = PerReplicaDChoicePlacement(d=2).place(4, servers, rng)
        assert decision.messages == 8
        assert len(decision.candidates) == 8

    def test_per_replica_prefers_empty_servers(self, servers, rng):
        for _ in range(5):
            servers[0].store(file_id=100 + _, replica_index=0, size=1.0)
        decision = PerReplicaDChoicePlacement(d=16).place(2, servers, rng)
        assert 0 not in decision.servers

    def test_kd_choice_default_is_k_plus_one_probes(self, servers, rng):
        decision = KDChoicePlacement(extra_probes=1).place(4, servers, rng)
        assert decision.messages == 5
        assert len(decision.servers) == 4

    def test_kd_choice_probe_ratio(self, servers, rng):
        decision = KDChoicePlacement(extra_probes=None, probe_ratio=2.0).place(4, servers, rng)
        assert decision.messages == 8

    def test_kd_choice_lookup_candidates_equal_probes(self, servers, rng):
        decision = KDChoicePlacement(extra_probes=1).place(3, servers, rng)
        assert len(decision.candidates) == 4

    def test_kd_choice_respects_multiplicity_cap(self, servers, rng):
        # With distinct probing disabled a server sampled twice can get at
        # most two replicas; just assert the placement only uses candidates.
        decision = KDChoicePlacement(extra_probes=2).place(5, servers, rng)
        assert set(decision.servers) <= set(decision.candidates)

    def test_policies_skip_dead_servers(self, servers, rng):
        for server in servers[:8]:
            server.fail()
        decision = KDChoicePlacement(extra_probes=1).place(3, servers, rng)
        assert all(servers[s].alive for s in decision.servers)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KDChoicePlacement(extra_probes=-1)
        with pytest.raises(ValueError):
            KDChoicePlacement(extra_probes=None, probe_ratio=0.5)
        with pytest.raises(ValueError):
            PerReplicaDChoicePlacement(d=0)

    def test_no_alive_servers_raises(self, rng):
        dead = [StorageServer(0)]
        dead[0].fail()
        with pytest.raises(RuntimeError):
            RandomPlacement().place(1, dead, rng)


class TestStorageSystem:
    def _system(self, policy=None, n_servers=32, mode="replication", seed=0):
        return StorageSystem(
            n_servers=n_servers,
            placement=policy or KDChoicePlacement(extra_probes=1),
            mode=mode,
            seed=seed,
        )

    def test_store_file_places_every_replica(self):
        system = self._system()
        stored = system.store_file(FileSpec(file_id=1, replicas=3))
        assert stored.replica_count == 3
        assert int(system.load_vector().sum()) == 3

    def test_duplicate_file_rejected(self):
        system = self._system()
        system.store_file(FileSpec(file_id=1, replicas=2))
        with pytest.raises(ValueError):
            system.store_file(FileSpec(file_id=1, replicas=2))

    def test_store_population_counts(self):
        system = self._system()
        system.store_population(file_population(50, replicas=3, seed=1))
        assert len(system.files) == 50
        assert int(system.load_vector().sum()) == 150

    def test_chunking_splits_size(self):
        system = self._system(mode="chunking")
        stored = system.store_file(FileSpec(file_id=1, replicas=4, size=8.0))
        assert stored.size == pytest.approx(2.0)
        assert system.bytes_vector().sum() == pytest.approx(8.0)

    def test_replication_duplicates_size(self):
        system = self._system(mode="replication")
        system.store_file(FileSpec(file_id=1, replicas=4, size=8.0))
        assert system.bytes_vector().sum() == pytest.approx(32.0)

    def test_lookup_cost_matches_candidates(self):
        system = self._system()
        stored = system.store_file(FileSpec(file_id=1, replicas=3))
        assert system.lookup_cost(1) == len(stored.candidates) == 4

    def test_unknown_file_lookup_raises(self):
        with pytest.raises(KeyError):
            self._system().lookup_cost(42)

    def test_read_file_alive(self):
        system = self._system()
        system.store_file(FileSpec(file_id=1, replicas=2))
        assert system.read_file(1)

    def test_report_fields(self):
        system = self._system()
        system.store_population(file_population(100, replicas=3, seed=2))
        report = system.report()
        assert report.n_files == 100
        assert report.n_replicas == 300
        assert report.max_load >= report.mean_load
        assert report.messages_per_file == pytest.approx(4.0)
        assert report.mean_lookup_cost == pytest.approx(4.0)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            StorageSystem(4, RandomPlacement(), mode="raid")

    def test_kd_choice_balances_better_than_random(self):
        population = file_population(2000, replicas=3, seed=3)
        random_system = self._system(RandomPlacement(), n_servers=64, seed=5)
        kd_system = self._system(KDChoicePlacement(extra_probes=1), n_servers=64, seed=5)
        random_system.store_population(population)
        kd_system.store_population(population)
        assert kd_system.report().max_load <= random_system.report().max_load


class TestFailures:
    def _loaded_system(self, mode="replication"):
        system = StorageSystem(
            n_servers=32, placement=KDChoicePlacement(extra_probes=1), mode=mode, seed=1
        )
        system.store_population(file_population(100, replicas=3, seed=2))
        return system

    def test_fail_random_servers_marks_them_down(self):
        system = self._loaded_system()
        failed = fail_random_servers(system, 4, seed=0)
        assert len(failed) == 4
        assert all(not system.servers[i].alive for i in failed)

    def test_fail_too_many_rejected(self):
        system = self._loaded_system()
        with pytest.raises(ValueError):
            fail_random_servers(system, 100, seed=0)

    def test_availability_replication_tolerant(self):
        system = self._loaded_system(mode="replication")
        fail_random_servers(system, 2, seed=3)
        report = availability(system)
        assert report.availability >= 0.95
        assert report.failed_servers == 2

    def test_availability_chunking_fragile(self):
        replication = self._loaded_system(mode="replication")
        chunking = self._loaded_system(mode="chunking")
        fail_random_servers(replication, 6, seed=4)
        fail_random_servers(chunking, 6, seed=4)
        assert availability(chunking).availability <= availability(replication).availability

    def test_re_replicate_restores_availability(self):
        system = self._loaded_system(mode="replication")
        fail_random_servers(system, 6, seed=5)
        lost_before = availability(system).lost_replicas
        repaired = re_replicate(system)
        assert repaired == lost_before
        # After repair every replica lives on an alive server.
        assert availability(system).lost_replicas == 0
        assert availability(system).availability == pytest.approx(1.0)

    def test_re_replicate_noop_without_failures(self):
        system = self._loaded_system()
        assert re_replicate(system) == 0
