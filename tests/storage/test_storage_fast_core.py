"""The fast storage core must be seed-for-seed identical to StorageSystem."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.workloads import file_population, file_sizes
from repro.storage.placement import (
    KDChoicePlacement,
    PerReplicaDChoicePlacement,
    RandomPlacement,
)
from repro.storage.system import StorageSystem, simulate_storage_fast

POLICIES = [
    (RandomPlacement, {}),
    (RandomPlacement, {"require_distinct": True}),
    (PerReplicaDChoicePlacement, {"d": 2}),
    (PerReplicaDChoicePlacement, {"d": 2, "require_distinct": True}),
    (KDChoicePlacement, {"extra_probes": 1}),
    (KDChoicePlacement, {"extra_probes": None, "probe_ratio": 2.0}),
    (KDChoicePlacement, {"extra_probes": 1, "require_distinct": True}),
]
POLICY_IDS = [
    "random", "random-distinct", "per-replica", "per-replica-distinct",
    "kd+1", "kd-ratio", "kd-distinct",
]


class TestFastStorageEquivalence:
    @pytest.mark.parametrize("policy_cls,kwargs", POLICIES, ids=POLICY_IDS)
    @pytest.mark.parametrize("mode", ["replication", "chunking"])
    def test_reports_and_loads_identical(self, policy_cls, kwargs, mode):
        seed = 5
        population = file_population(
            n_files=300, replicas=3, size_distribution="exponential", seed=seed
        )
        system = StorageSystem(64, policy_cls(**kwargs), mode=mode, seed=seed + 1)
        system.store_population(population)

        sizes = file_sizes(300, size_distribution="exponential", seed=seed)
        loads, report = simulate_storage_fast(
            64, sizes, 3, policy_cls(**kwargs), mode=mode, seed=seed + 1
        )
        assert report == system.report()
        assert np.array_equal(loads, system.load_vector())

    def test_replica_conservation(self):
        loads, report = simulate_storage_fast(
            32, file_sizes(100, seed=0), 4, KDChoicePlacement(extra_probes=1), seed=1
        )
        assert int(loads.sum()) == 400
        assert report.n_replicas == 400
        assert report.mean_lookup_cost == 5.0  # d = k + 1 candidates per file

    def test_unsupported_policy_rejected(self):
        class Unsupported(RandomPlacement):
            supports_fast_core = False

        with pytest.raises(ValueError, match="fast storage core"):
            simulate_storage_fast(8, file_sizes(4, seed=0), 2, Unsupported(), seed=0)

    def test_invalid_requests_rejected(self):
        policy = KDChoicePlacement()
        with pytest.raises(ValueError, match="n_servers"):
            simulate_storage_fast(0, file_sizes(4, seed=0), 2, policy)
        with pytest.raises(ValueError, match="mode"):
            simulate_storage_fast(8, file_sizes(4, seed=0), 2, policy, mode="raid")
        with pytest.raises(ValueError, match="replicas"):
            simulate_storage_fast(8, file_sizes(4, seed=0), 0, policy)
