"""ShardPool: bit-identity, routing, churn, manifests, error surfaces."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import SchemeSpec
from repro.online import OnlineAllocator
from repro.serve import (
    MANIFEST_FORMAT,
    MANIFEST_VERSION,
    ShardPool,
    ShardPoolError,
    make_router,
)

KD_PARAMS = {"n_bins": 64, "k": 2, "d": 4, "n_balls": 600}


def kd_spec(seed=7, **overrides):
    params = dict(KD_PARAMS, **overrides)
    return SchemeSpec(scheme="kd_choice", params=params, seed=seed)


@pytest.fixture(params=["thread", "process"])
def mode(request):
    return request.param


class TestShardIdentity:
    def test_each_shard_matches_a_standalone_allocator(self, mode):
        """The tentpole contract: the pool adds routing, never drift."""
        with ShardPool(kd_spec(), 3, policy="two_choice", mode=mode) as pool:
            shards, bins = pool.place_batch(400)
            for shard_index in range(3):
                subsequence = np.flatnonzero(shards == shard_index)
                standalone = OnlineAllocator(pool.shard_specs[shard_index])
                expected = standalone.place_batch(len(subsequence))
                assert np.array_equal(bins[subsequence], expected), (
                    f"shard {shard_index} diverged from its standalone twin"
                )

    def test_chunking_is_invisible(self, mode):
        """One 300-batch and 300 singles produce identical placements."""
        with ShardPool(kd_spec(), 4, mode=mode) as batch_pool, ShardPool(
            kd_spec(), 4, mode=mode
        ) as single_pool:
            shards_a, bins_a = batch_pool.place_batch(300)
            singles = [single_pool.place() for _ in range(300)]
            assert shards_a.tolist() == [s for s, _ in singles]
            assert bins_a.tolist() == [b for _, b in singles]

    def test_thread_and_process_modes_agree(self):
        with ShardPool(kd_spec(), 2, mode="thread") as a, ShardPool(
            kd_spec(), 2, mode="process"
        ) as b:
            assert a.place_batch(200)[1].tolist() == b.place_batch(200)[1].tolist()
            summary_a, summary_b = a.summary(), b.summary()
            assert summary_a.pop("mode") == "thread"
            assert summary_b.pop("mode") == "process"
            assert summary_a == summary_b

    def test_single_shard_pool_is_the_plain_allocator(self, mode):
        with ShardPool(kd_spec(), 1, mode=mode) as pool:
            _, bins = pool.place_batch(250)
            standalone = OnlineAllocator(pool.shard_specs[0])
            assert np.array_equal(bins, standalone.place_batch(250))


class TestRoutingAndChurn:
    def test_router_instance_can_be_injected(self):
        router = make_router("round_robin", 2)
        with ShardPool(kd_spec(), 2, policy=router, mode="thread") as pool:
            shards, _ = pool.place_batch(6)
            assert shards.tolist() == [0, 1, 0, 1, 0, 1]

    def test_router_shard_count_mismatch(self):
        with pytest.raises(ShardPoolError, match="router covers"):
            ShardPool(kd_spec(), 3, policy=make_router("round_robin", 2))

    def test_tracked_place_and_remove_roundtrip(self, mode):
        with ShardPool(kd_spec(), 2, mode=mode) as pool:
            placements = {f"item-{i}": pool.place(f"item-{i}") for i in range(40)}
            assert pool.live_items == 40
            for item, (shard, bin_index) in placements.items():
                assert pool.remove(item) == (shard, bin_index)
            assert pool.live_items == 0
            assert pool.shard_loads().tolist() == [0, 0]

    def test_remove_frees_router_capacity(self):
        with ShardPool(kd_spec(), 2, policy="least_loaded", mode="thread") as pool:
            pool.place_batch(10, items=[f"i{n}" for n in range(10)])
            before = pool.shard_loads()
            pool.remove("i0")
            after = pool.shard_loads()
            assert after.sum() == before.sum() - 1

    def test_unknown_item_remove(self):
        with ShardPool(kd_spec(), 2, mode="thread") as pool:
            with pytest.raises(ShardPoolError, match="unknown item"):
                pool.remove("ghost")

    def test_duplicate_and_colliding_items_rejected(self):
        with ShardPool(kd_spec(), 2, mode="thread") as pool:
            with pytest.raises(ShardPoolError, match="duplicate"):
                pool.place_batch(2, items=["a", "a"])
            pool.place("a")
            with pytest.raises(ShardPoolError, match="already"):
                pool.place_batch(1, items=["a"])
            with pytest.raises(ShardPoolError, match="entries"):
                pool.place_batch(2, items=["b"])
            with pytest.raises(ShardPoolError, match="None"):
                pool.place_batch(2, items=["b", None])

    def test_capacity_is_enforced(self):
        with ShardPool(kd_spec(n_balls=20), 2, mode="thread") as pool:
            pool.place_batch(20)
            assert pool.remaining == 0
            with pytest.raises(ShardPoolError, match="capacity"):
                pool.place()

    def test_capacity_requires_a_sized_spec(self):
        spec = SchemeSpec(
            scheme="kd_choice", params={"n_bins": None, "k": 2, "d": 4}, seed=0
        )
        with pytest.raises(ShardPoolError, match="capacity"):
            ShardPool(spec, 2, mode="thread")

    def test_closed_pool_rejects_work(self):
        pool = ShardPool(kd_spec(), 2, mode="thread")
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ShardPoolError, match="closed"):
            pool.place()


class TestManifests:
    def test_snapshot_restore_resumes_bit_identically(self, mode):
        with ShardPool(kd_spec(), 3, mode=mode) as pool:
            pool.place_batch(200, items=[f"i{n}" for n in range(200)])
            pool.remove("i7")
            manifest = json.loads(json.dumps(pool.snapshot()))
            reference_tail = pool.place_batch(150)
        assert manifest["format"] == MANIFEST_FORMAT
        assert manifest["version"] == MANIFEST_VERSION
        with ShardPool.restore(manifest, mode="thread") as restored:
            assert restored.placed == 200
            assert restored.removed == 1
            assert restored.live_items == 199
            restored_tail = restored.place_batch(150)
            assert np.array_equal(reference_tail[0], restored_tail[0])
            assert np.array_equal(reference_tail[1], restored_tail[1])

    def test_restore_preserves_loads_and_telemetry(self):
        with ShardPool(kd_spec(), 2, mode="thread") as pool:
            pool.place_batch(120, items=[f"i{n}" for n in range(120)])
            pool.remove("i3")
            loads = [l.tolist() for l in pool.bin_loads()]
            telemetry = pool.telemetry_counters()
            summary = pool.summary()
            manifest = json.loads(json.dumps(pool.snapshot()))
        with ShardPool.restore(manifest) as restored:
            assert [l.tolist() for l in restored.bin_loads()] == loads
            # wall_time is a wall-clock anchor, not event state: the live
            # restored pool keeps its own elapsed time running.
            def counts(shards):
                return [
                    {k: v for k, v in shard.items() if k != "wall_time"}
                    for shard in shards
                ]
            assert counts(restored.telemetry_counters()) == counts(telemetry)
            assert restored.summary() == summary

    def test_save_load_roundtrip(self, tmp_path, mode):
        path = tmp_path / "pool.manifest.json"
        with ShardPool(kd_spec(), 2, mode=mode) as pool:
            pool.place_batch(100)
            pool.save(path)
            expected = pool.place_batch(50)[1].tolist()
        assert not path.with_suffix(".json.tmp").exists()
        with ShardPool.load(path, mode="thread") as restored:
            assert restored.place_batch(50)[1].tolist() == expected

    def test_digest_mismatch_is_rejected_before_any_worker_starts(self):
        with ShardPool(kd_spec(), 2, mode="thread") as pool:
            pool.place_batch(50)
            manifest = pool.snapshot()
        manifest["shards"][1]["snapshot"]["placed"] = 49  # tamper
        with pytest.raises(ShardPoolError, match="digest mismatch"):
            ShardPool.restore(manifest)

    def test_wrong_format_and_version_rejected(self):
        with ShardPool(kd_spec(), 2, mode="thread") as pool:
            manifest = pool.snapshot()
        with pytest.raises(ShardPoolError, match="not a shard-pool manifest"):
            ShardPool.restore(dict(manifest, format="something-else"))
        with pytest.raises(ShardPoolError, match="version"):
            ShardPool.restore(dict(manifest, version=99))

    def test_shard_count_mismatch_rejected(self):
        with ShardPool(kd_spec(), 2, mode="thread") as pool:
            manifest = pool.snapshot()
        manifest["shards"] = manifest["shards"][:1]
        with pytest.raises(ShardPoolError, match="2 shards"):
            ShardPool.restore(manifest)

    def test_truncated_manifest_file_rejected_cleanly(self, tmp_path):
        path = tmp_path / "pool.manifest.json"
        with ShardPool(kd_spec(), 2, mode="thread") as pool:
            pool.place_batch(50)
            pool.save(path)
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) // 2], encoding="utf-8")
        with pytest.raises(ShardPoolError, match="truncated or corrupt"):
            ShardPool.load(path)


class TestSeeding:
    def test_shard_seeds_fan_out_of_the_root_seed(self):
        with ShardPool(kd_spec(seed=5), 4, mode="thread") as a, ShardPool(
            kd_spec(seed=5), 4, mode="thread"
        ) as b:
            assert a.shard_seeds == b.shard_seeds
            assert a.router_seed == b.router_seed
        with ShardPool(kd_spec(seed=6), 4, mode="thread") as c:
            assert c.shard_seeds != a.shard_seeds

    def test_shards_have_distinct_streams(self):
        with ShardPool(kd_spec(), 3, mode="thread") as pool:
            assert len(set(pool.shard_seeds)) == 3
            streams = [
                OnlineAllocator(spec).place_batch(50).tolist()
                for spec in pool.shard_specs
            ]
            assert streams[0] != streams[1]

    def test_non_integer_seed_rejected(self):
        spec = SchemeSpec(
            scheme="kd_choice", params=dict(KD_PARAMS),
            seed=np.random.SeedSequence(3),
        )
        with pytest.raises(ShardPoolError, match="integer"):
            ShardPool(spec, 2, mode="thread")

    def test_bad_construction_arguments(self):
        with pytest.raises(ShardPoolError, match="n_shards"):
            ShardPool(kd_spec(), 0, mode="thread")
        with pytest.raises(ShardPoolError, match="mode"):
            ShardPool(kd_spec(), 2, mode="fiber")
