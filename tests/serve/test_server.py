"""The asyncio frontend: protocol, batching, ordering, snapshots, loadgen."""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.api import SchemeSpec
from repro.serve import (
    AllocationServer,
    BlockingServeClient,
    ProtocolError,
    ServeClient,
    ServeConfig,
    ServeError,
    ShardPool,
    protocol,
    run_loadgen,
)

SPEC = SchemeSpec(
    scheme="kd_choice",
    params={"n_bins": 128, "k": 2, "d": 4, "n_balls": 20000},
    seed=11,
)


def run(coroutine):
    return asyncio.run(coroutine)


async def with_server(body, config=None):
    """Start a thread-mode server, run ``body(server)``, always stop."""
    server = AllocationServer(
        SPEC, config or ServeConfig(n_shards=2, mode="thread")
    )
    await server.start()
    try:
        return await body(server)
    finally:
        await server.stop()


class TestProtocol:
    def test_encode_is_canonical(self):
        line = protocol.encode({"op": "ping", "id": 3})
        assert line == b'{"id":3,"op":"ping"}\n'

    def test_decode_roundtrip(self):
        request = protocol.decode_request(b'{"id":1,"op":"place"}')
        assert request == {"id": 1, "op": "place"}

    @pytest.mark.parametrize(
        "line,match",
        [
            (b"not json", "not valid JSON"),
            (b"[1,2]", "JSON object"),
            (b'{"op":"levitate"}', "unknown op"),
            (b'{"op":"place_batch"}', "count"),
            (b'{"op":"place_batch","count":-1}', "count"),
            (b'{"op":"place_batch","count":true}', "count"),
            (b'{"op":"remove"}', "item"),
            (b'{"op":"snapshot"}', "path"),
            (b'{"op":"snapshot","path":""}', "path"),
        ],
    )
    def test_malformed_requests(self, line, match):
        with pytest.raises(ProtocolError, match=match):
            protocol.decode_request(line)

    def test_responses(self):
        assert protocol.ok_response(4, shard=1) == {
            "id": 4, "ok": True, "shard": 1,
        }
        assert protocol.error_response(4, "boom") == {
            "id": 4, "ok": False, "error": "boom",
        }


class TestServer:
    def test_place_remove_and_stats(self):
        async def body(server):
            client = await ServeClient.connect("127.0.0.1", server.port)
            try:
                assert await client.ping()
                shard, bin_index = await client.place("x")
                shards, bins = await client.place_batch(16)
                assert len(shards) == len(bins) == 16
                assert await client.remove("x") == (shard, bin_index)
                stats = await client.stats()
                assert stats["server"]["places"] == 17
                assert stats["server"]["removes"] == 1
                assert stats["pool"]["placed"] == 17
                assert stats["pool"]["removed"] == 1
            finally:
                await client.close()

        run(with_server(body))

    def test_concurrent_places_coalesce_into_windows(self):
        async def body(server):
            client = await ServeClient.connect("127.0.0.1", server.port)
            try:
                await asyncio.gather(*(client.place() for _ in range(200)))
            finally:
                await client.close()
            assert server.places == 200
            assert server.batches < 200  # pipelined places share windows
            assert server.largest_batch > 1
            stats = server.server_stats()
            assert stats["batched_places"] == 200
            assert stats["mean_batch"] > 1.0

        run(with_server(body, ServeConfig(
            n_shards=2, mode="thread", max_batch=64, max_delay=0.02,
        )))

    def test_server_stream_matches_inprocess_pool(self):
        """Transport adds nothing: same spec, same placements as ShardPool."""
        async def body(server):
            client = await ServeClient.connect("127.0.0.1", server.port)
            try:
                shards, bins = await client.place_batch(300)
            finally:
                await client.close()
            return shards, bins

        shards, bins = run(with_server(body))
        with ShardPool(SPEC, 2, mode="thread") as pool:
            expected_shards, expected_bins = pool.place_batch(300)
        assert shards == expected_shards.tolist()
        assert bins == expected_bins.tolist()

    def test_malformed_line_gets_error_response_and_keeps_connection(self):
        async def body(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                writer.write(b"this is not json\n")
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["ok"] is False
                assert "JSON" in response["error"]
                writer.write(protocol.encode({"id": 5, "op": "ping"}))
                await writer.drain()
                assert json.loads(await reader.readline())["ok"] is True
            finally:
                writer.close()
                await writer.wait_closed()
            assert server.protocol_errors == 1

        run(with_server(body))

    def test_pool_errors_become_error_responses(self):
        async def body(server):
            client = await ServeClient.connect("127.0.0.1", server.port)
            try:
                with pytest.raises(ServeError, match="unknown item"):
                    await client.remove("ghost")
                await client.place("dup")
                with pytest.raises(ServeError, match="already"):
                    await client.place("dup")
            finally:
                await client.close()

        run(with_server(body))

    def test_snapshot_op_quiesces_and_writes_manifest(self, tmp_path):
        path = tmp_path / "live.manifest.json"

        async def body(server):
            client = await ServeClient.connect("127.0.0.1", server.port)
            try:
                # In-flight places queued before the snapshot land in it.
                places = [
                    asyncio.create_task(client.place()) for _ in range(50)
                ]
                await asyncio.sleep(0)  # every place writes its line first
                response = await client.snapshot(str(path))
                await asyncio.gather(*places)
                assert response["shards"] == 2
            finally:
                await client.close()

        run(with_server(body))
        with ShardPool.load(path) as restored:
            assert restored.placed == 50
            assert sum(restored.shard_loads()) == 50

    def test_shutdown_op_stops_the_server(self):
        async def body():
            server = AllocationServer(
                SPEC, ServeConfig(n_shards=2, mode="thread")
            )
            await server.start()
            client = await ServeClient.connect("127.0.0.1", server.port)
            try:
                await client.place()
                await client.shutdown()
            finally:
                await client.close()
            await asyncio.wait_for(server.serve_forever(), timeout=10)
            with pytest.raises(ConnectionRefusedError):
                await asyncio.open_connection("127.0.0.1", server.port)

        run(body())

    def test_snapshot_on_exit(self, tmp_path):
        path = tmp_path / "exit.manifest.json"

        async def body(server):
            client = await ServeClient.connect("127.0.0.1", server.port)
            try:
                await client.place_batch(30)
            finally:
                await client.close()

        run(with_server(body, ServeConfig(
            n_shards=2, mode="thread", snapshot_on_exit=str(path),
        )))
        with ShardPool.load(path) as restored:
            assert restored.placed == 30

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="exactly one"):
            AllocationServer()
        with pytest.raises(ValueError, match="max_batch"):
            ServeConfig(max_batch=0)
        with pytest.raises(ValueError, match="max_delay"):
            ServeConfig(max_delay=-1)
        with pytest.raises(RuntimeError, match="not been started"):
            AllocationServer(SPEC).port


class TestBlockingClient:
    def test_blocking_facade(self):
        done = threading.Event()
        holder = {}

        def serve():
            async def body(server):
                holder["port"] = server.port
                done.set()
                await server.serve_forever()

            run(with_server(body))

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert done.wait(timeout=10)
        with BlockingServeClient("127.0.0.1", holder["port"]) as client:
            assert client.ping()
            shard, bin_index = client.place("a")
            assert client.remove("a") == (shard, bin_index)
            shards, bins = client.place_batch(8)
            assert len(shards) == len(bins) == 8
            assert client.stats()["server"]["places"] == 9
            client.shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()


class TestLoadgen:
    def test_loadgen_counts_and_report(self):
        async def body(server):
            report = await run_loadgen(
                "127.0.0.1", server.port,
                items=400, connections=3, churn=0.2, seed=9,
            )
            assert report.places == 400
            assert report.errors == 0
            assert report.removes == report.events - 400
            assert report.connections == 3
            assert report.placements_per_sec > 0
            assert set(report.latency_ms) == {"p50", "p95", "p99", "mean", "max"}
            assert report.server["places"] == 400
            assert report.pool["placed"] == 400
            assert report.pool["removed"] == report.removes
            # The dict and text renderings carry the same numbers.
            assert report.to_dict()["places"] == 400
            assert f"{report.places} places" in report.format_text()

        run(with_server(body))

    def test_loadgen_event_stream_is_deterministic(self):
        from repro.serve.loadgen import _partition_events
        from repro.online.trace import generate_workload_events

        events = generate_workload_events(200, churn=0.3, seed=4)
        again = generate_workload_events(200, churn=0.3, seed=4)
        assert events == again
        parts = _partition_events(events, 4)
        assert sum(len(part) for part in parts) == len(events)
        for part in parts:
            live = set()
            for event in part:
                if event["op"] == "place":
                    live.add(event["item"])
                else:
                    # The remove rides the connection that placed the item.
                    assert event["item"] in live

    def test_loadgen_validation(self):
        with pytest.raises(ValueError, match="connections"):
            run(run_loadgen("127.0.0.1", 1, items=10, connections=0))
        with pytest.raises(ValueError, match="max_in_flight"):
            run(run_loadgen("127.0.0.1", 1, items=10, max_in_flight=0))

    def test_loadgen_shutdown_after(self):
        async def body():
            server = AllocationServer(
                SPEC, ServeConfig(n_shards=2, mode="thread")
            )
            await server.start()
            report = await run_loadgen(
                "127.0.0.1", server.port, items=100, connections=2,
                shutdown_after=True,
            )
            assert report.places == 100
            await asyncio.wait_for(server.serve_forever(), timeout=10)

        run(body())
