"""Router policies: determinism, batch invariance, registry, persistence."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serve import (
    ROUTER_POLICIES,
    LeastLoadedRouter,
    RoundRobinRouter,
    RouterError,
    TopologyRouter,
    TwoChoiceRouter,
    available_router_policies,
    describe_router_policy,
    make_router,
    restore_router,
)
from repro.serve.router import PROBE_BLOCK

POLICIES = ["round_robin", "least_loaded", "two_choice", "topology"]


def drive(router, arrivals, n_shards):
    """Feed ``arrivals`` single decisions; return the destination list."""
    loads = np.zeros(n_shards, dtype=np.int64)
    decisions = []
    for _ in range(arrivals):
        shard = router.route(loads)
        loads[shard] += 1
        decisions.append(shard)
    return decisions


class TestDeterminism:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_fixed_seed_identical_across_runs(self, policy):
        first = drive(make_router(policy, 8, seed=42), 500, 8)
        second = drive(make_router(policy, 8, seed=42), 500, 8)
        assert first == second

    def test_two_choice_seeds_give_distinct_streams(self):
        first = drive(make_router("two_choice", 8, seed=1), 500, 8)
        second = drive(make_router("two_choice", 8, seed=2), 500, 8)
        assert first != second

    @pytest.mark.parametrize("policy", POLICIES)
    def test_chunking_never_changes_decisions(self, policy):
        """The core contract: batch windows are invisible to routing."""
        n_shards = 5
        arrivals = 700
        reference = drive(make_router(policy, n_shards, seed=9), arrivals, n_shards)
        # Same arrivals, sliced into ragged windows (including empty ones).
        router = make_router(policy, n_shards, seed=9)
        loads = np.zeros(n_shards, dtype=np.int64)
        chunked = []
        position = 0
        for size in [1, 0, 7, 64, 3, 128, 1, 256, 17]:
            size = min(size, arrivals - position)
            destinations = router.route_batch(size, loads)
            for shard in destinations:
                loads[shard] += 1
            chunked.extend(int(s) for s in destinations)
            position += size
        while position < arrivals:
            chunked.append(router.route(loads))
            loads[chunked[-1]] += 1
            position += 1
        assert chunked == reference

    def test_two_choice_chunking_across_probe_block_boundary(self):
        n_shards = 4
        arrivals = PROBE_BLOCK + 100
        expected = drive(
            make_router("two_choice", n_shards, seed=3), arrivals, n_shards
        )
        router = make_router("two_choice", n_shards, seed=3)
        loads = np.zeros(n_shards, dtype=np.int64)
        chunked = []
        for size in (PROBE_BLOCK - 50, 150):  # second window straddles blocks
            destinations = router.route_batch(size, loads)
            for shard in destinations:
                loads[shard] += 1
            chunked.extend(int(s) for s in destinations)
        assert chunked == expected


class TestSemantics:
    def test_round_robin_cycles(self):
        router = make_router("round_robin", 3)
        assert drive(router, 7, 3) == [0, 1, 2, 0, 1, 2, 0]

    def test_least_loaded_waterfills_with_lowest_index_ties(self):
        router = make_router("least_loaded", 3)
        loads = np.array([2, 0, 1], dtype=np.int64)
        # 5 arrivals water-fill to [2,2,2] then tie-break to shard 0, 1.
        assert router.route_batch(5, loads).tolist() == [1, 1, 2, 0, 1]

    def test_batch_sees_its_own_earlier_decisions(self):
        router = make_router("least_loaded", 4)
        destinations = router.route_batch(8, np.zeros(4, dtype=np.int64))
        assert sorted(destinations.tolist()) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_two_choice_probes_d_shards(self):
        # With d == n_shards == 1 every decision is shard 0.
        router = TwoChoiceRouter(1, seed=0, d=3)
        assert drive(router, 10, 1) == [0] * 10

    def test_two_choice_balances_better_than_random(self):
        n_shards = 16
        router = make_router("two_choice", n_shards, seed=11)
        loads = np.zeros(n_shards, dtype=np.int64)
        for _ in range(64 * n_shards):
            shard = router.route(loads)
            loads[shard] += 1
        assert loads.max() - loads.min() <= 4  # two-choice keeps the gap tiny

    def test_route_equals_route_batch_of_one(self):
        for policy in POLICIES:
            a = make_router(policy, 6, seed=5)
            b = make_router(policy, 6, seed=5)
            loads = np.array([3, 1, 4, 1, 5, 9], dtype=np.int64)
            assert a.route(loads) == int(b.route_batch(1, loads)[0])


class TestValidation:
    def test_unknown_policy_lists_candidates(self):
        with pytest.raises(RouterError, match="two_choice"):
            make_router("fancy", 4)

    def test_unknown_parameter_lists_supported(self):
        with pytest.raises(RouterError, match="supported"):
            make_router("two_choice", 4, fanout=3)

    def test_bad_shard_counts(self):
        with pytest.raises(RouterError):
            make_router("round_robin", 0)
        with pytest.raises(RouterError):
            make_router("round_robin", "4")

    def test_bad_d(self):
        with pytest.raises(RouterError):
            TwoChoiceRouter(4, d=0)

    def test_wrong_load_shape(self):
        router = make_router("least_loaded", 4)
        with pytest.raises(RouterError, match="shape"):
            router.route_batch(1, np.zeros(5, dtype=np.int64))

    def test_negative_count(self):
        router = make_router("round_robin", 4)
        with pytest.raises(RouterError):
            router.route_batch(-1, np.zeros(4, dtype=np.int64))


class TestPersistence:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_state_roundtrip_resumes_identically(self, policy):
        n_shards = 6
        reference = make_router(policy, n_shards, seed=21)
        loads = np.zeros(n_shards, dtype=np.int64)
        for _ in range(300):
            loads[reference.route(loads)] += 1
        # Through JSON: exactly what the manifest path sees after disk.
        state = json.loads(json.dumps(reference.state_dict()))
        resumed = restore_router(state)
        frozen = np.array(loads)
        assert np.array_equal(
            reference.route_batch(200, frozen), resumed.route_batch(200, frozen)
        )

    def test_two_choice_roundtrip_mid_probe_block(self):
        reference = TwoChoiceRouter(4, seed=8, d=3)
        loads = np.zeros(4, dtype=np.int64)
        reference.route_batch(100, loads)  # 100 of the first block consumed
        resumed = restore_router(json.loads(json.dumps(reference.state_dict())))
        assert np.array_equal(
            reference.route_batch(PROBE_BLOCK, loads),
            resumed.route_batch(PROBE_BLOCK, loads),
        )

    def test_policy_mismatch_rejected(self):
        state = make_router("round_robin", 4).state_dict()
        with pytest.raises(RouterError, match="cannot load"):
            make_router("least_loaded", 4).load_state(state)

    def test_shard_count_mismatch_rejected(self):
        state = make_router("round_robin", 4).state_dict()
        with pytest.raises(RouterError, match="4 shards"):
            make_router("round_robin", 5).load_state(state)

    def test_d_mismatch_rejected(self):
        state = TwoChoiceRouter(4, seed=1, d=2).state_dict()
        with pytest.raises(RouterError, match="d="):
            TwoChoiceRouter(4, seed=1, d=3).load_state(state)

    def test_malformed_state_rejected(self):
        with pytest.raises(RouterError, match="malformed"):
            restore_router({"n_shards": 4})


class TestTopologySemantics:
    def test_single_zone_matches_two_choice_bit_for_bit(self):
        n_shards = 6
        flat = drive(TwoChoiceRouter(n_shards, seed=17), 800, n_shards)
        zoned = drive(TopologyRouter(n_shards, seed=17, zones=1), 800, n_shards)
        assert zoned == flat

    def test_zone_affinity_beats_two_choice_on_cross_fraction(self):
        n_shards = 8
        arrivals = 4000
        fractions = {}
        for policy in ("two_choice", "topology"):
            router = make_router(policy, n_shards, seed=13, **(
                {"zones": 2} if policy == "topology" else {}
            ))
            loads = np.zeros(n_shards, dtype=np.int64)
            cross = 0
            decisions = 0
            shard_zone = np.arange(n_shards) % 2
            for _ in range(arrivals):
                home = decisions % 2
                shard = router.route(loads)
                loads[shard] += 1
                if shard_zone[shard] != home:
                    cross += 1
                decisions += 1
            fractions[policy] = cross / arrivals
        assert fractions["topology"] < fractions["two_choice"] / 2

    def test_cross_route_counter_tracks_spills(self):
        router = TopologyRouter(4, seed=5, zones=2, cross_cost=3.0)
        loads = np.zeros(4, dtype=np.int64)
        for _ in range(600):
            loads[router.route(loads)] += 1
        assert 0 < router.cross_routes < 600
        assert router.route_cost == pytest.approx(3.0 * router.cross_routes)

    def test_zero_threshold_spills_under_extreme_local_imbalance(self):
        # Zone 0 shards massively loaded: whenever a zone-0 arrival draws a
        # remote probe the spill path must fire and pick the light zone.
        router = TopologyRouter(4, seed=1, zones=2, threshold=0)
        loads = np.array([1000, 0, 1000, 0], dtype=np.int64)
        destinations = router.route_batch(50, loads).tolist()
        assert router.cross_routes > 0
        # Every spill escapes to the light zone, so it absorbs the majority;
        # the heavy zone only sees arrivals whose probes all landed at home.
        light = sum(1 for shard in destinations if shard in (1, 3))
        assert light > len(destinations) // 2

    def test_validation(self):
        with pytest.raises(RouterError, match="zones"):
            TopologyRouter(4, zones=0)
        with pytest.raises(RouterError, match="zones"):
            TopologyRouter(4, zones=5)
        with pytest.raises(RouterError, match="threshold"):
            TopologyRouter(4, zones=2, threshold=-1)
        with pytest.raises(RouterError, match="cross_cost"):
            TopologyRouter(4, zones=2, cross_cost=-1.0)
        with pytest.raises(RouterError, match="cross_cost"):
            TopologyRouter(4, zones=2, cross_cost=float("nan"))

    def test_state_roundtrip_preserves_counters(self):
        reference = TopologyRouter(6, seed=3, zones=3, threshold=1, cross_cost=2.0)
        loads = np.zeros(6, dtype=np.int64)
        for _ in range(400):
            loads[reference.route(loads)] += 1
        state = json.loads(json.dumps(reference.state_dict()))
        resumed = restore_router(state)
        assert isinstance(resumed, TopologyRouter)
        assert resumed.cross_routes == reference.cross_routes
        assert resumed.route_cost == reference.route_cost
        frozen = np.array(loads)
        assert np.array_equal(
            reference.route_batch(200, frozen), resumed.route_batch(200, frozen)
        )

    def test_zones_mismatch_rejected(self):
        state = TopologyRouter(4, seed=1, zones=2).state_dict()
        with pytest.raises(RouterError, match="zones"):
            TopologyRouter(4, seed=1, zones=4).load_state(state)


class TestRegistry:
    def test_catalogue_names(self):
        assert available_router_policies() == [
            "least_loaded", "round_robin", "topology", "two_choice",
        ]

    def test_aliases_resolve(self):
        assert isinstance(make_router("rr", 2), RoundRobinRouter)
        assert isinstance(make_router("ll", 2), LeastLoadedRouter)
        assert isinstance(make_router("two", 2), TwoChoiceRouter)
        assert isinstance(make_router("d_choice", 2, d=4), TwoChoiceRouter)
        assert isinstance(make_router("zone", 4, zones=2), TopologyRouter)

    def test_describe_reports_parameters(self):
        description = describe_router_policy("two_choice")
        assert description["name"] == "two_choice"
        assert description["parameters"]["d"] == 2
        assert "router" in description["tags"]

    def test_separate_from_scheme_registry(self):
        from repro.api import REGISTRY

        assert "round_robin" in ROUTER_POLICIES
        assert "round_robin" not in REGISTRY
        assert "kd_choice" not in ROUTER_POLICIES
