"""Property-based scalar-vs-vectorized equivalence harness.

The contract locked down here is the one the vectorized engines advertise:
for every covered scheme family, a fixed seed produces **bit-for-bit** the
same final load vector as the scalar reference, and both engines consume the
underlying random stream identically (so results stay equivalent under any
composition — trial fan-out, caching, parallel executors).

Two layers of coverage:

* Hypothesis (a dev dependency) explores the parameter space adaptively —
  tiny bin counts maximize batch conflicts, ``k == d`` hits the degenerate
  shortcuts, ``n_balls % k != 0`` exercises the partial tail rounds.
* A deterministic randomized-seed parametrization (no Hypothesis required)
  derives ~a dozen cases per family from a pinned master seed, so the suite
  keeps its coverage even where Hypothesis is unavailable.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import vectorized as vec
from repro.core.adaptive import run_threshold_adaptive, run_two_phase_adaptive
from repro.core.baselines import (
    run_always_go_left,
    run_d_choice,
    run_one_plus_beta,
)
from repro.core.dynamic import run_churn_kd_choice
from repro.core.process import run_kd_choice
from repro.core.serialization import run_serialized_kd_choice
from repro.core.stale import run_stale_kd_choice
from repro.core.weighted import run_weighted_kd_choice

try:  # optional: the randomized parametrization below covers its absence
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without the dep
    HAVE_HYPOTHESIS = False

MASTER_SEED = 20260728


def _paired_rngs(seed):
    return np.random.default_rng(seed), np.random.default_rng(seed)


def _assert_equivalent(scalar_result, vector_result, scalar_rng, vector_rng):
    """Loads, accounting and RNG stream consumption must all coincide."""
    scalar_loads = getattr(scalar_result, "loads", None)
    if scalar_loads is None:  # ChurnResult
        scalar_loads = scalar_result.final_loads
        vector_loads = vector_result.final_loads
    else:
        vector_loads = vector_result.loads
    assert np.array_equal(scalar_loads, vector_loads)
    assert scalar_result.messages == vector_result.messages
    assert scalar_result.rounds == vector_result.rounds
    assert (
        scalar_rng.bit_generator.state == vector_rng.bit_generator.state
    ), "engines consumed the random stream differently"


# ----------------------------------------------------------------------
# One checker per covered family.  Each takes plain ints/floats so it can be
# driven by Hypothesis and by the randomized parametrization alike.
# ----------------------------------------------------------------------
def check_kd_choice(n_bins, k, d, n_balls, seed):
    a, b = _paired_rngs(seed)
    scalar = run_kd_choice(n_bins=n_bins, k=k, d=d, n_balls=n_balls, rng=a)
    vector = vec.run_kd_choice_vectorized(n_bins=n_bins, k=k, d=d, n_balls=n_balls, rng=b)
    _assert_equivalent(scalar, vector, a, b)


def check_kd_choice_streaming(n_bins, k, d, n_balls, seed, chunk_rounds):
    a, b = _paired_rngs(seed)
    scalar = run_kd_choice(
        n_bins=n_bins, k=k, d=d, n_balls=n_balls, rng=a, chunk_rounds=chunk_rounds
    )
    vector = vec.run_kd_choice_vectorized(
        n_bins=n_bins, k=k, d=d, n_balls=n_balls, rng=b, chunk_rounds=chunk_rounds
    )
    _assert_equivalent(scalar, vector, a, b)


def check_weighted(n_bins, k, d, n_balls, seed, weights):
    a, b = _paired_rngs(seed)
    scalar = run_weighted_kd_choice(
        n_bins=n_bins, k=k, d=d, weights=weights, n_balls=n_balls, rng=a
    )
    vector = vec.run_weighted_kd_choice_vectorized(
        n_bins=n_bins, k=k, d=d, weights=weights, n_balls=n_balls, rng=b
    )
    _assert_equivalent(scalar, vector, a, b)
    assert np.array_equal(
        scalar.extra["weighted_loads"], vector.extra["weighted_loads"]
    ), "weighted (float) loads must match bit for bit"
    assert scalar.extra["total_weight"] == vector.extra["total_weight"]


def check_stale(n_bins, k, d, n_balls, seed, stale_rounds):
    a, b = _paired_rngs(seed)
    scalar = run_stale_kd_choice(
        n_bins=n_bins, k=k, d=d, stale_rounds=stale_rounds, n_balls=n_balls, rng=a
    )
    vector = vec.run_stale_kd_choice_vectorized(
        n_bins=n_bins, k=k, d=d, stale_rounds=stale_rounds, n_balls=n_balls, rng=b
    )
    _assert_equivalent(scalar, vector, a, b)


def check_churn(n_bins, k, d, rounds, seed, departures):
    a, b = _paired_rngs(seed)
    scalar = run_churn_kd_choice(
        n_bins=n_bins, k=k, d=d, rounds=rounds, departures_per_round=departures, rng=a
    )
    vector = vec.run_churn_kd_choice_vectorized(
        n_bins=n_bins, k=k, d=d, rounds=rounds, departures_per_round=departures, rng=b
    )
    _assert_equivalent(scalar, vector, a, b)
    assert [s.__dict__ for s in scalar.snapshots] == [
        s.__dict__ for s in vector.snapshots
    ]


def check_d_choice(n_bins, d, n_balls, seed):
    a, b = _paired_rngs(seed)
    scalar = run_d_choice(n_bins=n_bins, d=d, n_balls=n_balls, rng=a)
    vector = vec.run_d_choice_vectorized(n_bins=n_bins, d=d, n_balls=n_balls, rng=b)
    _assert_equivalent(scalar, vector, a, b)
    assert scalar.scheme == vector.scheme


def check_one_plus_beta(n_bins, beta, n_balls, seed):
    a, b = _paired_rngs(seed)
    scalar = run_one_plus_beta(n_bins=n_bins, beta=beta, n_balls=n_balls, rng=a)
    vector = vec.run_one_plus_beta_vectorized(
        n_bins=n_bins, beta=beta, n_balls=n_balls, rng=b
    )
    _assert_equivalent(scalar, vector, a, b)


def check_always_go_left(n_bins, d, n_balls, seed):
    a, b = _paired_rngs(seed)
    scalar = run_always_go_left(n_bins=n_bins, d=d, n_balls=n_balls, rng=a)
    vector = vec.run_always_go_left_vectorized(
        n_bins=n_bins, d=d, n_balls=n_balls, rng=b
    )
    _assert_equivalent(scalar, vector, a, b)


def check_threshold_adaptive(n_bins, n_balls, seed, threshold, max_probes):
    a, b = _paired_rngs(seed)
    scalar = run_threshold_adaptive(
        n_bins=n_bins, n_balls=n_balls, threshold=threshold, max_probes=max_probes, rng=a
    )
    vector = vec.run_threshold_adaptive_vectorized(
        n_bins=n_bins, n_balls=n_balls, threshold=threshold, max_probes=max_probes, rng=b
    )
    _assert_equivalent(scalar, vector, a, b)
    assert scalar.extra["probe_histogram"] == vector.extra["probe_histogram"]


def check_serialized(n_bins, k, d, n_balls, seed, sigma):
    # The derived batch engine drives the per-round kernel, so it must stay
    # bit-identical even for the inherently sequential serialized process
    # (it omits only the per-ball "placements" record).
    a, b = _paired_rngs(seed)
    scalar = run_serialized_kd_choice(
        n_bins=n_bins, k=k, d=d, n_balls=n_balls, sigma=sigma, rng=a
    )
    vector = vec.run_serialized_kd_choice_vectorized(
        n_bins=n_bins, k=k, d=d, n_balls=n_balls, sigma=sigma, rng=b
    )
    _assert_equivalent(scalar, vector, a, b)
    assert scalar.scheme == vector.scheme


def check_greedy_kd_choice(n_bins, k, d, n_balls, seed):
    # The greedy policy re-reads loads after every placement; the derived
    # batch engine drives the stepper per round and must match exactly.
    a, b = _paired_rngs(seed)
    scalar = run_kd_choice(
        n_bins=n_bins, k=k, d=d, n_balls=n_balls, policy="greedy", rng=a
    )
    vector = vec.run_greedy_kd_choice_vectorized(
        n_bins=n_bins, k=k, d=d, n_balls=n_balls, rng=b
    )
    _assert_equivalent(scalar, vector, a, b)


def check_callable_threshold(n_bins, n_balls, seed, threshold, max_probes):
    # Callable thresholds force the batch engine onto the per-ball drive
    # path (no bulk threshold evaluation); results must not change.
    a, b = _paired_rngs(seed)
    scalar = run_threshold_adaptive(
        n_bins=n_bins, n_balls=n_balls, threshold=threshold, max_probes=max_probes, rng=a
    )
    vector = vec.run_threshold_adaptive_vectorized(
        n_bins=n_bins, n_balls=n_balls, threshold=threshold, max_probes=max_probes, rng=b
    )
    _assert_equivalent(scalar, vector, a, b)
    assert scalar.extra["probe_histogram"] == vector.extra["probe_histogram"]


def check_two_phase_adaptive(n_bins, n_balls, seed, cap, retry_probes):
    a, b = _paired_rngs(seed)
    scalar = run_two_phase_adaptive(
        n_bins=n_bins, n_balls=n_balls, cap=cap, retry_probes=retry_probes, rng=a
    )
    vector = vec.run_two_phase_adaptive_vectorized(
        n_bins=n_bins, n_balls=n_balls, cap=cap, retry_probes=retry_probes, rng=b
    )
    _assert_equivalent(scalar, vector, a, b)
    assert scalar.extra["retries"] == vector.extra["retries"]


# ----------------------------------------------------------------------
# Randomized-seed parametrization (always runs, Hypothesis or not)
# ----------------------------------------------------------------------
def _cases(family: str, count: int = 12):
    """Deterministic pseudo-random configurations for one family."""
    source = random.Random(f"{MASTER_SEED}-{family}")
    cases = []
    for index in range(count):
        n_bins = source.randint(8, 1500)
        d = source.randint(1, min(10, n_bins))
        k = source.randint(1, d)
        n_balls = source.randint(1, 3 * n_bins)
        seed = source.randint(0, 2**31)
        cases.append(
            {
                "n_bins": n_bins,
                "k": k,
                "d": d,
                "n_balls": n_balls,
                "seed": seed,
                "index": index,
                "source": source,
            }
        )
    return cases


def _ids(cases):
    return [
        f"n{c['n_bins']}-k{c['k']}-d{c['d']}-m{c['n_balls']}" for c in cases
    ]


_KD_CASES = _cases("kd")
_SERIALIZED_CASES = _cases("serialized")
_WEIGHTED_CASES = _cases("weighted")
_STALE_CASES = _cases("stale")
_CHURN_CASES = _cases("churn")
_BASELINE_CASES = _cases("baselines")
_ADAPTIVE_CASES = _cases("adaptive")


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("case", _KD_CASES, ids=_ids(_KD_CASES))
    def test_kd_choice(self, case):
        check_kd_choice(case["n_bins"], case["k"], case["d"], case["n_balls"], case["seed"])

    @pytest.mark.parametrize("case", _KD_CASES[:6], ids=_ids(_KD_CASES[:6]))
    @pytest.mark.parametrize("chunk_rounds", [1, 7, 64, 4096])
    def test_kd_choice_streaming_chunks(self, case, chunk_rounds):
        check_kd_choice_streaming(
            case["n_bins"], case["k"], case["d"], case["n_balls"], case["seed"],
            chunk_rounds,
        )

    @pytest.mark.parametrize("case", _SERIALIZED_CASES, ids=_ids(_SERIALIZED_CASES))
    def test_serialized(self, case):
        sigma = ("identity", "reversed", "random")[case["index"] % 3]
        n_balls = case["n_balls"] - (case["n_balls"] % case["k"])
        check_serialized(
            case["n_bins"], case["k"], case["d"], max(n_balls, case["k"]),
            case["seed"], sigma,
        )

    @pytest.mark.parametrize("case", _KD_CASES, ids=_ids(_KD_CASES))
    def test_greedy_kd_choice(self, case):
        check_greedy_kd_choice(
            case["n_bins"], case["k"], case["d"], case["n_balls"], case["seed"]
        )

    @pytest.mark.parametrize("case", _ADAPTIVE_CASES, ids=_ids(_ADAPTIVE_CASES))
    def test_callable_threshold(self, case):
        offset = case["index"] % 3
        threshold = lambda average: int(average) + offset  # noqa: E731
        max_probes = (None, 2, 6)[offset]
        check_callable_threshold(
            case["n_bins"], case["n_balls"], case["seed"], threshold, max_probes
        )

    @pytest.mark.parametrize("case", _WEIGHTED_CASES, ids=_ids(_WEIGHTED_CASES))
    def test_weighted(self, case):
        weights = ("constant", "exponential", "pareto")[case["index"] % 3]
        check_weighted(
            case["n_bins"], case["k"], case["d"], case["n_balls"], case["seed"], weights
        )

    def test_weighted_explicit_weight_array(self):
        weights = list(np.linspace(0.1, 5.0, 300))
        check_weighted(64, 3, 6, 300, 11, weights)

    @pytest.mark.parametrize("case", _STALE_CASES, ids=_ids(_STALE_CASES))
    def test_stale(self, case):
        stale_rounds = (1, 2, 8, 64)[case["index"] % 4]
        check_stale(
            case["n_bins"], case["k"], case["d"], case["n_balls"], case["seed"],
            stale_rounds,
        )

    @pytest.mark.parametrize("case", _CHURN_CASES, ids=_ids(_CHURN_CASES))
    def test_churn(self, case):
        rounds = 1 + case["n_balls"] // max(case["k"], 1) // 4
        departures = (None, 0, 1, case["k"])[case["index"] % 4]
        check_churn(
            case["n_bins"], case["k"], case["d"], min(rounds, 300), case["seed"],
            departures,
        )

    @pytest.mark.parametrize("case", _BASELINE_CASES, ids=_ids(_BASELINE_CASES))
    def test_d_choice_and_two_choice(self, case):
        check_d_choice(case["n_bins"], case["d"], case["n_balls"], case["seed"])
        check_d_choice(case["n_bins"], 2, case["n_balls"], case["seed"] + 1)

    @pytest.mark.parametrize("case", _BASELINE_CASES, ids=_ids(_BASELINE_CASES))
    def test_one_plus_beta(self, case):
        beta = (0.0, 0.25, 0.5, 1.0)[case["index"] % 4]
        check_one_plus_beta(case["n_bins"], beta, case["n_balls"], case["seed"])

    @pytest.mark.parametrize("case", _BASELINE_CASES, ids=_ids(_BASELINE_CASES))
    def test_always_go_left(self, case):
        check_always_go_left(case["n_bins"], case["d"], case["n_balls"], case["seed"])

    @pytest.mark.parametrize("case", _ADAPTIVE_CASES, ids=_ids(_ADAPTIVE_CASES))
    def test_threshold_adaptive(self, case):
        threshold = (None, 0, 2, None)[case["index"] % 4]
        max_probes = (None, 1, 3, 9)[case["index"] % 4]
        check_threshold_adaptive(
            case["n_bins"], case["n_balls"], case["seed"], threshold, max_probes
        )

    @pytest.mark.parametrize("case", _ADAPTIVE_CASES, ids=_ids(_ADAPTIVE_CASES))
    def test_two_phase_adaptive(self, case):
        cap = (None, 1, 2, 5)[case["index"] % 4]
        retry_probes = (1, 2, 4, 8)[case["index"] % 4]
        check_two_phase_adaptive(
            case["n_bins"], case["n_balls"], case["seed"], cap, retry_probes
        )


# ----------------------------------------------------------------------
# Hypothesis layer (adaptive exploration; skipped when unavailable)
# ----------------------------------------------------------------------
if HAVE_HYPOTHESIS:
    # Small bin counts are deliberately over-weighted: they maximize batch
    # conflicts, which is where the speculate-verify kernels earn their keep.
    sizes = st.integers(min_value=2, max_value=600)
    seeds = st.integers(min_value=0, max_value=2**32 - 1)
    COMMON = dict(deadline=None, max_examples=30)

    class TestHypothesisEquivalence:
        @settings(**COMMON)
        @given(n_bins=sizes, d=st.integers(1, 12), k_frac=st.floats(0, 1),
               m_frac=st.floats(0.01, 3.0), seed=seeds)
        def test_kd_choice(self, n_bins, d, k_frac, m_frac, seed):
            d = min(d, n_bins)
            k = max(1, round(k_frac * d))
            n_balls = max(1, round(m_frac * n_bins))
            check_kd_choice(n_bins, k, d, n_balls, seed)

        @settings(**COMMON)
        @given(n_bins=sizes, d=st.integers(1, 10), k_frac=st.floats(0, 1),
               rounds=st.integers(1, 60), seed=seeds,
               sigma=st.sampled_from(["identity", "reversed", "random"]))
        def test_serialized(self, n_bins, d, k_frac, rounds, seed, sigma):
            d = min(d, n_bins)
            k = max(1, round(k_frac * d))
            check_serialized(n_bins, k, d, k * rounds, seed, sigma)

        @settings(**COMMON)
        @given(n_bins=sizes, d=st.integers(1, 12), k_frac=st.floats(0, 1),
               m_frac=st.floats(0.01, 3.0), seed=seeds)
        def test_greedy_kd_choice(self, n_bins, d, k_frac, m_frac, seed):
            d = min(d, n_bins)
            k = max(1, round(k_frac * d))
            n_balls = max(1, round(m_frac * n_bins))
            check_greedy_kd_choice(n_bins, k, d, n_balls, seed)

        @settings(**COMMON)
        @given(n_bins=sizes, m_frac=st.floats(0.01, 3.0), seed=seeds,
               offset=st.integers(0, 4),
               max_probes=st.one_of(st.none(), st.integers(1, 10)))
        def test_callable_threshold(self, n_bins, m_frac, seed, offset, max_probes):
            n_balls = max(1, round(m_frac * n_bins))
            check_callable_threshold(
                n_bins, n_balls, seed,
                lambda average: int(average) + offset, max_probes,
            )

        @settings(**COMMON)
        @given(n_bins=sizes, d=st.integers(1, 10), k_frac=st.floats(0, 1),
               m_frac=st.floats(0.01, 3.0), seed=seeds,
               weights=st.sampled_from(["constant", "exponential", "pareto"]))
        def test_weighted(self, n_bins, d, k_frac, m_frac, seed, weights):
            d = min(d, n_bins)
            k = max(1, round(k_frac * d))
            n_balls = max(1, round(m_frac * n_bins))
            check_weighted(n_bins, k, d, n_balls, seed, weights)

        @settings(**COMMON)
        @given(n_bins=sizes, d=st.integers(1, 10), k_frac=st.floats(0, 1),
               m_frac=st.floats(0.01, 3.0), seed=seeds,
               stale_rounds=st.integers(1, 64))
        def test_stale(self, n_bins, d, k_frac, m_frac, seed, stale_rounds):
            d = min(d, n_bins)
            k = max(1, round(k_frac * d))
            n_balls = max(1, round(m_frac * n_bins))
            check_stale(n_bins, k, d, n_balls, seed, stale_rounds)

        @settings(**COMMON)
        @given(n_bins=sizes, d=st.integers(1, 8), k_frac=st.floats(0, 1),
               rounds=st.integers(0, 120), seed=seeds,
               departures=st.one_of(st.none(), st.integers(0, 6)))
        def test_churn(self, n_bins, d, k_frac, rounds, seed, departures):
            d = min(d, n_bins)
            k = max(1, round(k_frac * d))
            check_churn(n_bins, k, d, rounds, seed, departures)

        @settings(**COMMON)
        @given(n_bins=sizes, beta=st.floats(0, 1), m_frac=st.floats(0.01, 3.0),
               seed=seeds)
        def test_one_plus_beta(self, n_bins, beta, m_frac, seed):
            n_balls = max(1, round(m_frac * n_bins))
            check_one_plus_beta(n_bins, beta, n_balls, seed)

        @settings(**COMMON)
        @given(n_bins=sizes, d=st.integers(1, 8), m_frac=st.floats(0.01, 3.0),
               seed=seeds)
        def test_always_go_left(self, n_bins, d, m_frac, seed):
            d = min(d, n_bins)
            n_balls = max(1, round(m_frac * n_bins))
            check_always_go_left(n_bins, d, n_balls, seed)

        @settings(**COMMON)
        @given(n_bins=sizes, m_frac=st.floats(0.01, 3.0), seed=seeds,
               threshold=st.one_of(st.none(), st.integers(0, 5)),
               max_probes=st.one_of(st.none(), st.integers(1, 10)))
        def test_threshold_adaptive(self, n_bins, m_frac, seed, threshold, max_probes):
            n_balls = max(1, round(m_frac * n_bins))
            check_threshold_adaptive(n_bins, n_balls, seed, threshold, max_probes)

        @settings(**COMMON)
        @given(n_bins=sizes, m_frac=st.floats(0.01, 3.0), seed=seeds,
               cap=st.one_of(st.none(), st.integers(1, 6)),
               retry_probes=st.integers(1, 8))
        def test_two_phase_adaptive(self, n_bins, m_frac, seed, cap, retry_probes):
            n_balls = max(1, round(m_frac * n_bins))
            check_two_phase_adaptive(n_bins, n_balls, seed, cap, retry_probes)


# ----------------------------------------------------------------------
# Compiled engine (C backend): same contract as the vectorized layer —
# bit-identical loads/accounting and identical RNG stream consumption —
# checked against the scalar reference for every compiled-covered family.
# Skipped wholesale when the backend cannot build here (no compiler/cffi).
# ----------------------------------------------------------------------
from repro.core.compiled import backend_unavailable_reason  # noqa: E402
from repro.core.kernels import table as ktable  # noqa: E402

_COMPILED_REASON = backend_unavailable_reason()
requires_compiled = pytest.mark.skipif(
    _COMPILED_REASON is not None,
    reason=f"compiled backend unavailable: {_COMPILED_REASON}",
)


def _assert_compiled_equivalent(scalar_fn, compiled_fn, kwargs, seed):
    a, b = _paired_rngs(seed)
    scalar = scalar_fn(rng=a, **kwargs)
    compiled = compiled_fn(rng=b, **kwargs)
    _assert_equivalent(scalar, compiled, a, b)
    assert compiled.extra["engine"] == "compiled"
    return scalar, compiled


@requires_compiled
class TestCompiledEquivalence:
    @pytest.mark.parametrize("case", _KD_CASES, ids=_ids(_KD_CASES))
    def test_kd_choice(self, case):
        _assert_compiled_equivalent(
            run_kd_choice, ktable.run_kd_choice_compiled,
            dict(n_bins=case["n_bins"], k=case["k"], d=case["d"],
                 n_balls=case["n_balls"]),
            case["seed"],
        )

    @pytest.mark.parametrize("case", _KD_CASES[:6], ids=_ids(_KD_CASES[:6]))
    @pytest.mark.parametrize("chunk_rounds", [1, 7, 64, 4096])
    def test_kd_choice_streaming_chunks(self, case, chunk_rounds):
        _assert_compiled_equivalent(
            run_kd_choice, ktable.run_kd_choice_compiled,
            dict(n_bins=case["n_bins"], k=case["k"], d=case["d"],
                 n_balls=case["n_balls"], chunk_rounds=chunk_rounds),
            case["seed"],
        )

    @pytest.mark.parametrize("case", _WEIGHTED_CASES, ids=_ids(_WEIGHTED_CASES))
    def test_weighted(self, case):
        weights = ("constant", "exponential", "pareto")[case["index"] % 3]
        scalar, compiled = _assert_compiled_equivalent(
            run_weighted_kd_choice, ktable.run_weighted_kd_choice_compiled,
            dict(n_bins=case["n_bins"], k=case["k"], d=case["d"],
                 weights=weights, n_balls=case["n_balls"]),
            case["seed"],
        )
        assert np.array_equal(
            scalar.extra["weighted_loads"], compiled.extra["weighted_loads"]
        ), "weighted (float) loads must match bit for bit"
        assert scalar.extra["total_weight"] == compiled.extra["total_weight"]

    @pytest.mark.parametrize("case", _STALE_CASES, ids=_ids(_STALE_CASES))
    def test_stale(self, case):
        stale_rounds = (1, 2, 8, 64)[case["index"] % 4]
        _assert_compiled_equivalent(
            run_stale_kd_choice, ktable.run_stale_kd_choice_compiled,
            dict(n_bins=case["n_bins"], k=case["k"], d=case["d"],
                 stale_rounds=stale_rounds, n_balls=case["n_balls"]),
            case["seed"],
        )

    @pytest.mark.parametrize("case", _BASELINE_CASES, ids=_ids(_BASELINE_CASES))
    def test_d_choice_and_two_choice(self, case):
        _assert_compiled_equivalent(
            run_d_choice, ktable.run_d_choice_compiled,
            dict(n_bins=case["n_bins"], d=case["d"], n_balls=case["n_balls"]),
            case["seed"],
        )
        a, b = _paired_rngs(case["seed"] + 1)
        scalar = run_d_choice(
            n_bins=case["n_bins"], d=2, n_balls=case["n_balls"], rng=a
        )
        compiled = ktable.run_two_choice_compiled(
            n_bins=case["n_bins"], n_balls=case["n_balls"], rng=b
        )
        assert np.array_equal(scalar.loads, compiled.loads)
        assert scalar.messages == compiled.messages
        assert a.bit_generator.state == b.bit_generator.state
        assert compiled.extra["engine"] == "compiled"

    @pytest.mark.parametrize("case", _BASELINE_CASES, ids=_ids(_BASELINE_CASES))
    def test_one_plus_beta(self, case):
        beta = (0.0, 0.25, 0.5, 1.0)[case["index"] % 4]
        _assert_compiled_equivalent(
            run_one_plus_beta, ktable.run_one_plus_beta_compiled,
            dict(n_bins=case["n_bins"], beta=beta, n_balls=case["n_balls"]),
            case["seed"],
        )

    @pytest.mark.parametrize("case", _BASELINE_CASES, ids=_ids(_BASELINE_CASES))
    def test_always_go_left(self, case):
        _assert_compiled_equivalent(
            run_always_go_left, ktable.run_always_go_left_compiled,
            dict(n_bins=case["n_bins"], d=case["d"], n_balls=case["n_balls"]),
            case["seed"],
        )

    @pytest.mark.parametrize("case", _ADAPTIVE_CASES, ids=_ids(_ADAPTIVE_CASES))
    def test_threshold_adaptive(self, case):
        threshold = (None, 0, 2, None)[case["index"] % 4]
        max_probes = (None, 1, 3, 9)[case["index"] % 4]
        scalar, compiled = _assert_compiled_equivalent(
            run_threshold_adaptive, ktable.run_threshold_adaptive_compiled,
            dict(n_bins=case["n_bins"], n_balls=case["n_balls"],
                 threshold=threshold, max_probes=max_probes),
            case["seed"],
        )
        assert scalar.extra["probe_histogram"] == compiled.extra["probe_histogram"]

    @pytest.mark.parametrize("case", _ADAPTIVE_CASES, ids=_ids(_ADAPTIVE_CASES))
    def test_two_phase_adaptive(self, case):
        cap = (None, 1, 2, 5)[case["index"] % 4]
        retry_probes = (1, 2, 4, 8)[case["index"] % 4]
        scalar, compiled = _assert_compiled_equivalent(
            run_two_phase_adaptive, ktable.run_two_phase_adaptive_compiled,
            dict(n_bins=case["n_bins"], n_balls=case["n_balls"], cap=cap,
                 retry_probes=retry_probes),
            case["seed"],
        )
        assert scalar.extra["retries"] == compiled.extra["retries"]
