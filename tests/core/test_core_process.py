"""Unit tests for the (k, d)-choice process."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.process import KDChoiceProcess, run_kd_choice


class TestValidation:
    def test_rejects_k_greater_than_d(self):
        with pytest.raises(ValueError):
            KDChoiceProcess(n_bins=16, k=5, d=3)

    def test_rejects_d_exceeding_bins(self):
        with pytest.raises(ValueError):
            KDChoiceProcess(n_bins=4, k=1, d=8)

    def test_rejects_bad_chunk_rounds(self):
        with pytest.raises(ValueError):
            KDChoiceProcess(n_bins=16, k=1, d=2, chunk_rounds=0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            KDChoiceProcess(n_bins=16, k=1, d=2, policy="bogus")


class TestConservationAndCounts:
    @pytest.mark.parametrize("k,d", [(1, 1), (1, 2), (2, 3), (4, 8), (8, 9), (5, 16)])
    def test_ball_conservation(self, k, d, small_n):
        result = run_kd_choice(n_bins=small_n, k=k, d=d, seed=1)
        assert result.total_balls_check()
        assert result.n_balls == small_n

    def test_default_ball_count_equals_bins(self, small_n):
        result = run_kd_choice(n_bins=small_n, k=2, d=4, seed=0)
        assert result.n_balls == small_n

    def test_explicit_ball_count(self, small_n):
        result = run_kd_choice(n_bins=small_n, k=2, d=4, n_balls=3 * small_n, seed=0)
        assert int(result.loads.sum()) == 3 * small_n

    def test_rounds_count_exact_division(self, small_n):
        result = run_kd_choice(n_bins=small_n, k=4, d=8, seed=0)
        assert result.rounds == small_n // 4

    def test_rounds_count_with_remainder(self):
        result = run_kd_choice(n_bins=100, k=7, d=9, n_balls=100, seed=0)
        # 14 full rounds of 7 balls plus one tail round of 2 balls.
        assert result.rounds == 15
        assert int(result.loads.sum()) == 100

    def test_message_cost_is_d_per_round(self, small_n):
        result = run_kd_choice(n_bins=small_n, k=4, d=8, seed=0)
        assert result.messages == (small_n // 4) * 8

    def test_result_metadata(self, small_n):
        result = run_kd_choice(n_bins=small_n, k=2, d=5, seed=0)
        assert result.k == 2
        assert result.d == 5
        assert result.scheme == "(2,5)-choice"
        assert result.policy == "strict"

    def test_zero_balls(self):
        result = run_kd_choice(n_bins=32, k=2, d=4, n_balls=0, seed=0)
        assert result.max_load == 0
        assert result.messages == 0


class TestDeterminism:
    def test_same_seed_same_result(self, small_n):
        a = run_kd_choice(n_bins=small_n, k=3, d=6, seed=99)
        b = run_kd_choice(n_bins=small_n, k=3, d=6, seed=99)
        assert np.array_equal(a.loads, b.loads)

    def test_different_seeds_differ(self, small_n):
        a = run_kd_choice(n_bins=small_n, k=3, d=6, seed=1)
        b = run_kd_choice(n_bins=small_n, k=3, d=6, seed=2)
        assert not np.array_equal(a.loads, b.loads)

    def test_generator_can_be_supplied(self, small_n):
        rng = np.random.default_rng(5)
        result = run_kd_choice(n_bins=small_n, k=2, d=4, rng=rng)
        assert result.total_balls_check()

    def test_chunking_does_not_change_validity_or_quality(self, small_n):
        # Different chunk sizes interleave RNG draws differently, so the runs
        # are not bitwise identical — but both must conserve balls and give
        # comparable balance.
        a = KDChoiceProcess(small_n, 2, 4, seed=3, chunk_rounds=8).run()
        b = KDChoiceProcess(small_n, 2, 4, seed=3, chunk_rounds=1024).run()
        assert a.total_balls_check() and b.total_balls_check()
        assert abs(a.max_load - b.max_load) <= 1


class TestRoundExecution:
    def test_run_round_with_explicit_samples(self):
        process = KDChoiceProcess(n_bins=8, k=2, d=3, seed=0)
        destinations = process.run_round(samples=np.array([1, 1, 5]))
        assert len(destinations) == 2
        assert set(destinations) <= {1, 5}
        assert process.state.total_balls == 2

    def test_run_round_rejects_wrong_sample_count(self):
        process = KDChoiceProcess(n_bins=8, k=2, d=3, seed=0)
        with pytest.raises(ValueError):
            process.run_round(samples=np.array([1, 2]))

    def test_run_round_increments_messages(self):
        process = KDChoiceProcess(n_bins=8, k=2, d=3, seed=0)
        process.run_round()
        process.run_round()
        assert process.messages == 6
        assert process.rounds_executed == 2


class TestLoadBalanceQuality:
    """Statistical sanity: multiple choice beats single choice."""

    def test_two_choice_beats_single_choice(self, medium_n):
        single = run_kd_choice(n_bins=medium_n, k=1, d=1, seed=11)
        double = run_kd_choice(n_bins=medium_n, k=1, d=2, seed=11)
        assert double.max_load < single.max_load

    def test_kd_choice_close_to_two_choice_for_small_k(self, medium_n):
        # (2, 3)-choice should still give a small max load (paper Table 1: 4
        # at n ~ 2*10^5; smaller n gives at most that).
        result = run_kd_choice(n_bins=medium_n, k=2, d=3, seed=5)
        assert result.max_load <= 5

    def test_wide_gap_gives_constant_load(self, medium_n):
        # d = 2k with k = 16: Theorem 1(i) regime, max load should be tiny.
        result = run_kd_choice(n_bins=medium_n, k=16, d=32, seed=5)
        assert result.max_load <= 3

    def test_k_close_to_d_degrades(self, medium_n):
        near_single = run_kd_choice(n_bins=medium_n, k=64, d=65, seed=5)
        balanced = run_kd_choice(n_bins=medium_n, k=16, d=32, seed=5)
        assert near_single.max_load >= balanced.max_load

    def test_heavy_load_average_grows_but_gap_stays_small(self):
        n = 1 << 10
        result = run_kd_choice(n_bins=n, k=2, d=4, n_balls=8 * n, seed=7)
        assert result.average_load == pytest.approx(8.0)
        assert result.gap <= 6.0

    def test_greedy_policy_runs_and_conserves(self, small_n):
        result = run_kd_choice(n_bins=small_n, k=4, d=5, policy="greedy", seed=3)
        assert result.total_balls_check()
        assert result.policy == "greedy"
