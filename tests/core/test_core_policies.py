"""Unit tests for the strict and greedy allocation policies.

These tests encode the paper's own worked examples from Section 1
(scenarios (a), (b) and (c) of the (3, 4)-choice discussion) plus the
Section 7 example for the greedy relaxation.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core.policies import GreedyPolicy, StrictPolicy, get_policy


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestStrictPolicyPaperScenarios:
    """Loads of bins 1..4 are 3, 2, 1, 0 at the start of a (3, 4)-choice round."""

    LOADS = [3, 2, 1, 0]

    def test_scenario_a_each_bin_sampled_once(self, rng):
        # Samples: one probe per bin.  The three least loaded (bins 2, 3, 4 =
        # indices 1, 2, 3) each receive one ball.
        destinations = StrictPolicy().select(self.LOADS, [0, 1, 2, 3], k=3, rng=rng)
        assert Counter(destinations) == Counter({1: 1, 2: 1, 3: 1})

    def test_scenario_b_duplicate_samples_of_the_empty_bin(self, rng):
        # bin2 and bin3 sampled once, bin4 sampled twice: the paper's policy
        # gives bin3 one ball and bin4 two balls.
        destinations = StrictPolicy().select(self.LOADS, [1, 2, 3, 3], k=3, rng=rng)
        assert Counter(destinations) == Counter({2: 1, 3: 2})

    def test_scenario_c_only_two_distinct_destinations(self, rng):
        # bin1 and bin4 sampled twice each: bin1 receives one ball and bin4 two.
        destinations = StrictPolicy().select(self.LOADS, [0, 0, 3, 3], k=3, rng=rng)
        assert Counter(destinations) == Counter({0: 1, 3: 2})


class TestStrictPolicyGeneralBehaviour:
    def test_returns_exactly_k_destinations(self, rng):
        destinations = StrictPolicy().select([0] * 10, [1, 2, 3, 4, 5], k=3, rng=rng)
        assert len(destinations) == 3

    def test_multiplicity_cap_never_exceeded(self, rng):
        loads = [0] * 8
        samples = [2, 2, 5, 7, 2, 5]
        destinations = StrictPolicy().select(loads, samples, k=4, rng=rng)
        sample_multiplicity = Counter(samples)
        for bin_index, count in Counter(destinations).items():
            assert count <= sample_multiplicity[bin_index]

    def test_destinations_are_subset_of_samples(self, rng):
        loads = [1, 0, 5, 2, 3]
        samples = [0, 2, 2, 4]
        destinations = StrictPolicy().select(loads, samples, k=2, rng=rng)
        assert set(destinations) <= set(samples)

    def test_k_equal_one_picks_a_least_loaded_sample(self, rng):
        loads = [4, 1, 3, 0]
        destinations = StrictPolicy().select(loads, [0, 1, 2], k=1, rng=rng)
        # Bin 1 (load 1) is the least loaded among the sampled {0, 1, 2}.
        assert destinations == [1]

    def test_k_equals_d_places_every_sample(self, rng):
        loads = [0, 0, 0]
        samples = [2, 2, 1]
        destinations = StrictPolicy().select(loads, samples, k=3, rng=rng)
        assert destinations == samples

    def test_rejects_k_larger_than_d(self, rng):
        with pytest.raises(ValueError):
            StrictPolicy().select([0, 0], [0, 1], k=3, rng=rng)

    def test_rejects_nonpositive_k(self, rng):
        with pytest.raises(ValueError):
            StrictPolicy().select([0, 0], [0, 1], k=0, rng=rng)

    def test_prefers_lower_loads(self, rng):
        loads = [10, 0, 10, 10]
        destinations = StrictPolicy().select(loads, [0, 1, 2, 3], k=1, rng=rng)
        assert destinations == [1]

    def test_equivalent_to_place_then_remove_highest(self, rng):
        # Cross-check against a direct implementation of the paper's
        # place-d-then-remove-(d-k)-highest rule.
        loads = [2, 0, 1, 4, 0, 3]
        samples = [1, 1, 3, 5, 4]
        k = 3
        destinations = StrictPolicy().select(loads, samples, k, rng)

        # Direct simulation: heights of the d placed balls.
        working = list(loads)
        heights = []
        for s in samples:
            working[s] += 1
            heights.append((working[s], s))
        kept = sorted(range(len(samples)), key=lambda j: heights[j][0])[:k]
        expected_bins = Counter(samples[j] for j in kept)
        assert Counter(destinations) == expected_bins


class TestGreedyPolicy:
    def test_section7_example_two_balls_to_empty_bin(self, rng):
        # (2, 3)-choice with sampled loads {0, 2, 3}: the greedy relaxation
        # puts both balls into the empty bin.
        loads = [3, 2, 0]
        destinations = GreedyPolicy().select(loads, [0, 1, 2], k=2, rng=rng)
        assert Counter(destinations) == Counter({2: 2})

    def test_returns_exactly_k_destinations(self, rng):
        destinations = GreedyPolicy().select([0] * 6, [0, 1, 2, 3], k=3, rng=rng)
        assert len(destinations) == 3

    def test_destinations_drawn_from_distinct_samples(self, rng):
        loads = [5, 0, 2, 1]
        destinations = GreedyPolicy().select(loads, [1, 1, 3, 3], k=3, rng=rng)
        assert set(destinations) <= {1, 3}

    def test_water_filling_balances_within_round(self, rng):
        # With 4 empty distinct bins and k = 4, greedy spreads one ball each.
        destinations = GreedyPolicy().select([0] * 4, [0, 1, 2, 3], k=4, rng=rng)
        assert Counter(destinations) == Counter({0: 1, 1: 1, 2: 1, 3: 1})

    def test_can_exceed_sample_multiplicity(self, rng):
        # The single sample of the empty bin may receive multiple balls.
        loads = [9, 9, 0]
        destinations = GreedyPolicy().select(loads, [0, 1, 2], k=3, rng=rng)
        assert Counter(destinations)[2] >= 2

    def test_rejects_invalid_k(self, rng):
        with pytest.raises(ValueError):
            GreedyPolicy().select([0, 0], [0, 1], k=0, rng=rng)


class TestGetPolicy:
    def test_resolves_strict_by_name(self):
        assert isinstance(get_policy("strict"), StrictPolicy)

    def test_resolves_greedy_by_name(self):
        assert isinstance(get_policy("greedy"), GreedyPolicy)

    def test_passes_through_instances(self):
        policy = StrictPolicy()
        assert get_policy(policy) is policy

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            get_policy("does-not-exist")
