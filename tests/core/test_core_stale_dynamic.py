"""Unit tests for the stale-information and dynamic (churn) extensions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamic import DynamicKDChoiceProcess, run_churn_kd_choice
from repro.core.stale import StaleKDChoiceProcess, run_stale_kd_choice


class TestStaleProcess:
    def test_conservation(self, small_n):
        result = run_stale_kd_choice(small_n, 4, 8, stale_rounds=8, seed=1)
        assert int(result.loads.sum()) == small_n

    def test_epoch_of_one_behaves_like_fresh_process(self, medium_n):
        stale = run_stale_kd_choice(medium_n, 4, 8, stale_rounds=1, seed=2)
        assert stale.max_load <= 4  # same ballpark as the fresh (4, 8) process

    def test_staleness_recorded_in_result(self, small_n):
        result = run_stale_kd_choice(small_n, 4, 8, stale_rounds=16, seed=3)
        assert result.extra["stale_rounds"] == 16
        assert "epoch=16" in result.scheme

    def test_messages_d_per_round(self, small_n):
        result = run_stale_kd_choice(small_n, 4, 8, stale_rounds=4, seed=4)
        assert result.messages == (small_n // 4) * 8

    def test_invalid_stale_rounds_rejected(self):
        with pytest.raises(ValueError):
            StaleKDChoiceProcess(64, 2, 4, stale_rounds=0)

    def test_more_staleness_never_helps(self, medium_n):
        fresh = np.mean(
            [run_stale_kd_choice(medium_n, 4, 8, stale_rounds=1, seed=s).max_load for s in range(3)]
        )
        very_stale = np.mean(
            [
                run_stale_kd_choice(medium_n, 4, 8, stale_rounds=256, seed=s).max_load
                for s in range(3)
            ]
        )
        assert very_stale >= fresh

    def test_fully_stale_approaches_batch_random(self, medium_n):
        # One epoch covering the whole run: every probe sees empty bins, so
        # the process is close to random placement of n balls.
        result = run_stale_kd_choice(
            medium_n, 4, 8, stale_rounds=medium_n // 4 + 1, seed=5
        )
        assert result.max_load >= 4

    def test_partial_final_round(self):
        result = run_stale_kd_choice(100, 8, 16, stale_rounds=4, seed=6)
        assert int(result.loads.sum()) == 100

    def test_greedy_policy_supported(self, small_n):
        result = run_stale_kd_choice(small_n, 4, 8, stale_rounds=4, policy="greedy", seed=7)
        assert result.policy == "greedy"
        assert int(result.loads.sum()) == small_n


class TestDynamicChurn:
    def test_population_stable_with_balanced_churn(self):
        result = run_churn_kd_choice(128, 2, 4, rounds=256, seed=1)
        # warmup = n balls; arrivals == departures per round keeps it there.
        assert int(result.final_loads.sum()) == 128

    def test_population_grows_without_departures(self):
        process = DynamicKDChoiceProcess(128, 2, 4, departures_per_round=0, seed=2)
        result = process.run(rounds=64, warmup_balls=0)
        assert int(result.final_loads.sum()) == 64 * 2

    def test_snapshots_recorded(self):
        result = run_churn_kd_choice(64, 2, 4, rounds=64, seed=3)
        assert result.snapshots
        assert result.snapshots[-1].round_index == 64
        for snapshot in result.snapshots:
            assert snapshot.max_load >= snapshot.average_load - 1e-9

    def test_steady_state_gap_nonnegative(self):
        result = run_churn_kd_choice(64, 2, 4, rounds=128, seed=4)
        assert result.steady_state_gap() >= 0.0
        assert result.steady_state_max_load() >= 1.0

    def test_warmup_fraction_validation(self):
        result = run_churn_kd_choice(32, 1, 2, rounds=16, seed=5)
        with pytest.raises(ValueError):
            result.steady_state_gap(warmup_fraction=1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DynamicKDChoiceProcess(64, 2, 4, departures_per_round=-1)
        process = DynamicKDChoiceProcess(64, 2, 4, departures_per_round=2)
        with pytest.raises(ValueError):
            process.run(rounds=-1)
        with pytest.raises(ValueError):
            process.run(rounds=4, snapshot_every=0)

    def test_churn_with_choices_beats_random_churn(self):
        # Under balanced churn, (1, 2)-choice keeps a smaller steady gap than
        # single-choice churn (the dynamic analogue of the power of two
        # choices).
        random_churn = run_churn_kd_choice(256, 1, 1, rounds=2048, seed=6)
        two_choice_churn = run_churn_kd_choice(256, 1, 2, rounds=2048, seed=6)
        assert (
            two_choice_churn.steady_state_gap()
            <= random_churn.steady_state_gap() + 0.25
        )

    def test_deterministic_per_seed(self):
        a = run_churn_kd_choice(64, 2, 4, rounds=64, seed=9)
        b = run_churn_kd_choice(64, 2, 4, rounds=64, seed=9)
        assert np.array_equal(a.final_loads, b.final_loads)
