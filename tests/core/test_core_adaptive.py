"""Unit tests for the adaptive comparator schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptive import run_threshold_adaptive, run_two_phase_adaptive
from repro.core.baselines import run_single_choice


class TestThresholdAdaptive:
    def test_conservation(self, small_n):
        assert run_threshold_adaptive(small_n, seed=1).total_balls_check()

    def test_probe_histogram_sums_to_balls(self, small_n):
        result = run_threshold_adaptive(small_n, seed=1)
        histogram = result.extra["probe_histogram"]
        assert sum(histogram.values()) == small_n

    def test_messages_match_histogram(self, small_n):
        result = run_threshold_adaptive(small_n, seed=1)
        histogram = result.extra["probe_histogram"]
        assert result.messages == sum(p * c for p, c in histogram.items())

    def test_average_probes_close_to_one(self, medium_n):
        # The adaptive scheme's whole point: (1 + o(1)) probes per ball.
        result = run_threshold_adaptive(medium_n, seed=2)
        assert result.extra["average_probes"] < 1.6

    def test_max_load_beats_single_choice(self, medium_n):
        single = run_single_choice(medium_n, seed=3)
        adaptive = run_threshold_adaptive(medium_n, seed=3)
        assert adaptive.max_load < single.max_load

    def test_fixed_integer_threshold_accepted(self, small_n):
        result = run_threshold_adaptive(small_n, threshold=1, seed=1)
        assert result.total_balls_check()

    def test_callable_threshold_accepted(self, small_n):
        result = run_threshold_adaptive(
            small_n, threshold=lambda average: int(average) + 2, seed=1
        )
        assert result.total_balls_check()

    def test_max_probes_respected(self, small_n):
        result = run_threshold_adaptive(small_n, max_probes=3, seed=1)
        assert max(result.extra["probe_histogram"]) <= 3

    def test_invalid_max_probes_rejected(self, small_n):
        with pytest.raises(ValueError):
            run_threshold_adaptive(small_n, max_probes=0)

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            run_threshold_adaptive(0)

    def test_deterministic_per_seed(self, small_n):
        a = run_threshold_adaptive(small_n, seed=5)
        b = run_threshold_adaptive(small_n, seed=5)
        assert np.array_equal(a.loads, b.loads)


class TestTwoPhaseAdaptive:
    def test_conservation(self, small_n):
        assert run_two_phase_adaptive(small_n, seed=1).total_balls_check()

    def test_retry_fraction_recorded(self, small_n):
        result = run_two_phase_adaptive(small_n, seed=1)
        assert 0.0 <= result.extra["retry_fraction"] <= 1.0

    def test_messages_account_for_retries(self, small_n):
        result = run_two_phase_adaptive(small_n, retry_probes=4, seed=1)
        retries = result.extra["retries"]
        assert result.messages == small_n + 4 * retries

    def test_low_cap_forces_retries(self, small_n):
        result = run_two_phase_adaptive(small_n, cap=1, seed=1)
        assert result.extra["retries"] > 0

    def test_huge_cap_means_no_retries(self, small_n):
        result = run_two_phase_adaptive(small_n, cap=10 ** 6, seed=1)
        assert result.extra["retries"] == 0
        assert result.messages == small_n

    def test_bounded_max_load_with_default_cap(self, medium_n):
        result = run_two_phase_adaptive(medium_n, seed=4)
        # Default cap is ceil(m/n) + 2 = 3; phase-2 balls join the least
        # loaded of several probes, so the max load stays small.
        assert result.max_load <= 6

    def test_invalid_retry_probes_rejected(self, small_n):
        with pytest.raises(ValueError):
            run_two_phase_adaptive(small_n, retry_probes=0)

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            run_two_phase_adaptive(-1)
