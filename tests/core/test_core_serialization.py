"""Unit tests for the serialized process A_sigma (Definition 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.serialization import SerializedKDChoice, run_serialized_kd_choice


class TestBasicRuns:
    def test_conservation(self, small_n):
        result = run_serialized_kd_choice(n_bins=small_n, k=4, d=8, seed=1)
        assert int(result.loads.sum()) == small_n

    def test_placement_count_matches_balls(self, small_n):
        process = SerializedKDChoice(n_bins=small_n, k=4, d=8, seed=1)
        process.run()
        assert len(process.placements) == small_n

    def test_requires_k_divides_n_balls(self):
        process = SerializedKDChoice(n_bins=100, k=3, d=5, seed=0)
        with pytest.raises(ValueError):
            process.run(n_balls=100)

    def test_messages_are_d_per_round(self, small_n):
        result = run_serialized_kd_choice(n_bins=small_n, k=4, d=8, seed=1)
        assert result.messages == (small_n // 4) * 8

    def test_result_extra_contains_placements(self, small_n):
        result = run_serialized_kd_choice(n_bins=small_n, k=2, d=4, seed=1)
        assert len(result.extra["placements"]) == small_n


class TestPlacementRecords:
    def test_times_are_sequential(self):
        process = SerializedKDChoice(n_bins=64, k=4, d=8, seed=2)
        process.run()
        times = [p.time for p in process.placements]
        assert times == list(range(1, 65))

    def test_round_indices_consistent_with_k(self):
        process = SerializedKDChoice(n_bins=64, k=4, d=8, seed=2)
        process.run()
        for placement in process.placements:
            expected_round = (placement.time - 1) // 4 + 1
            assert placement.round_index == expected_round

    def test_positions_within_round_cover_1_to_k(self):
        process = SerializedKDChoice(n_bins=64, k=4, d=8, seed=2)
        process.run()
        for r in range(1, 64 // 4 + 1):
            positions = sorted(
                p.position_in_round for p in process.placements if p.round_index == r
            )
            assert positions == [1, 2, 3, 4]

    def test_heights_match_reconstructed_loads(self):
        process = SerializedKDChoice(n_bins=32, k=2, d=4, seed=3)
        process.run()
        for placement in process.placements:
            loads_after = process.loads_at_time(placement.time)
            loads_before = process.loads_at_time(placement.time - 1)
            assert loads_after[placement.bin_index] == loads_before[placement.bin_index] + 1
            assert placement.height == loads_after[placement.bin_index]

    def test_height_of_ball_accessor(self):
        process = SerializedKDChoice(n_bins=32, k=2, d=4, seed=3)
        process.run()
        assert process.height_of_ball(1) == process.placements[0].height

    def test_loads_at_time_bounds_checked(self):
        process = SerializedKDChoice(n_bins=16, k=2, d=4, seed=3)
        process.run()
        with pytest.raises(ValueError):
            process.loads_at_time(17)
        with pytest.raises(ValueError):
            process.loads_at_time(-1)

    def test_sorted_loads_at_time_is_descending(self):
        process = SerializedKDChoice(n_bins=16, k=2, d=4, seed=3)
        process.run()
        sorted_loads = process.sorted_loads_at_time(8)
        assert all(sorted_loads[i] >= sorted_loads[i + 1] for i in range(len(sorted_loads) - 1))


class TestPropertyOne:
    """Property (i): every serialization is equivalent to the round process."""

    @pytest.mark.parametrize("sigma", ["identity", "reversed"])
    def test_final_state_identical_for_rng_free_sigmas(self, sigma):
        # Under the natural coupling realized by the implementation, the
        # end-of-round loads must be identical for every sigma given the same
        # seed, as long as the sigma strategy itself consumes no randomness
        # (the same samples and the same destination slots are then used).
        identity = run_serialized_kd_choice(n_bins=128, k=4, d=8, sigma="identity", seed=77)
        other = run_serialized_kd_choice(n_bins=128, k=4, d=8, sigma=sigma, seed=77)
        assert sorted(identity.loads.tolist()) == sorted(other.loads.tolist())

    def test_random_sigma_statistically_equivalent(self):
        # A randomized sigma consumes extra RNG draws, so runs with the same
        # seed are not coupled; check distributional equivalence on the mean
        # maximum load instead.
        identity = [
            run_serialized_kd_choice(n_bins=256, k=4, d=8, sigma="identity", seed=s).max_load
            for s in range(6)
        ]
        randomized = [
            run_serialized_kd_choice(n_bins=256, k=4, d=8, sigma="random", seed=s).max_load
            for s in range(6)
        ]
        assert abs(np.mean(identity) - np.mean(randomized)) <= 1.0

    def test_custom_sigma_callable(self):
        def rotate(round_index, k, rng):
            shift = round_index % k
            return tuple((i + shift) % k for i in range(k))

        result = run_serialized_kd_choice(n_bins=64, k=4, d=8, sigma=rotate, seed=5)
        assert int(result.loads.sum()) == 64

    def test_invalid_sigma_name_rejected(self):
        with pytest.raises(ValueError):
            SerializedKDChoice(n_bins=16, k=2, d=4, sigma="bogus")

    def test_sigma_returning_non_permutation_rejected(self):
        def broken(round_index, k, rng):
            return (0,) * k

        process = SerializedKDChoice(n_bins=16, k=2, d=4, sigma=broken, seed=1)
        with pytest.raises(ValueError):
            process.run()

    def test_matches_round_process_max_load_statistically(self):
        # The serialized process and the round process are the same process;
        # over a few seeds their max loads should coincide almost always.
        from repro.core.process import run_kd_choice

        serial = [
            run_serialized_kd_choice(n_bins=512, k=4, d=8, seed=s).max_load
            for s in range(5)
        ]
        round_based = [
            run_kd_choice(n_bins=512, k=4, d=8, seed=s).max_load for s in range(5)
        ]
        assert abs(np.mean(serial) - np.mean(round_based)) <= 1.0
