"""Unit tests for the weighted (k, d)-choice extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.weighted import WeightedKDChoiceProcess, make_weights, run_weighted_kd_choice


class TestMakeWeights:
    def test_constant(self, rng):
        weights = make_weights("constant", 10, rng, mean_weight=2.0)
        assert np.allclose(weights, 2.0)

    def test_exponential_mean(self, rng):
        weights = make_weights("exponential", 20000, rng, mean_weight=3.0)
        assert weights.mean() == pytest.approx(3.0, rel=0.1)

    def test_pareto_mean_and_positivity(self, rng):
        weights = make_weights("pareto", 50000, rng, mean_weight=1.0, pareto_shape=3.0)
        assert np.all(weights > 0)
        assert weights.mean() == pytest.approx(1.0, rel=0.15)

    def test_pareto_shape_must_exceed_one(self, rng):
        with pytest.raises(ValueError):
            make_weights("pareto", 10, rng, pareto_shape=1.0)

    def test_explicit_sequence(self, rng):
        weights = make_weights([1.0, 2.0, 3.0], 3, rng)
        assert list(weights) == [1.0, 2.0, 3.0]

    def test_explicit_sequence_wrong_length(self, rng):
        with pytest.raises(ValueError):
            make_weights([1.0, 2.0], 3, rng)

    def test_callable_spec(self, rng):
        weights = make_weights(lambda r, n: np.full(n, 5.0), 4, rng)
        assert np.allclose(weights, 5.0)

    def test_negative_weights_rejected(self, rng):
        with pytest.raises(ValueError):
            make_weights([1.0, -1.0], 2, rng)

    def test_unknown_name_rejected(self, rng):
        with pytest.raises(ValueError):
            make_weights("weibull", 5, rng)


class TestWeightedProcess:
    def test_ball_count_conservation(self, small_n):
        result = run_weighted_kd_choice(small_n, 4, 8, weights="exponential", seed=1)
        assert int(result.loads.sum()) == small_n

    def test_weight_conservation(self, small_n):
        result = run_weighted_kd_choice(small_n, 4, 8, weights="exponential", seed=1)
        weighted = result.extra["weighted_loads"]
        assert float(weighted.sum()) == pytest.approx(result.extra["total_weight"])

    def test_unit_weights_match_unweighted_invariants(self, small_n):
        result = run_weighted_kd_choice(small_n, 2, 4, weights="constant", seed=2)
        weighted = result.extra["weighted_loads"]
        # With unit weights the weighted loads equal the ball counts.
        assert np.allclose(weighted, result.loads)

    def test_scheme_name_mentions_distribution(self, small_n):
        result = run_weighted_kd_choice(small_n, 2, 4, weights="pareto", seed=3)
        assert "pareto" in result.scheme

    def test_messages_d_per_round(self, small_n):
        result = run_weighted_kd_choice(small_n, 4, 8, seed=4)
        assert result.messages == (small_n // 4) * 8

    def test_partial_final_round(self):
        result = run_weighted_kd_choice(100, 8, 16, weights="constant", seed=5)
        assert int(result.loads.sum()) == 100

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            WeightedKDChoiceProcess(16, 5, 3)

    def test_deterministic_per_seed(self, small_n):
        a = run_weighted_kd_choice(small_n, 4, 8, weights="exponential", seed=9)
        b = run_weighted_kd_choice(small_n, 4, 8, weights="exponential", seed=9)
        assert np.array_equal(a.loads, b.loads)
        assert np.allclose(a.extra["weighted_loads"], b.extra["weighted_loads"])

    def test_multiple_choices_balance_weight_better_than_single(self, medium_n):
        # Weighted two-choice-style process should have a smaller weighted gap
        # than weighted "single choice" (k = d = 1).
        multi = run_weighted_kd_choice(medium_n, 4, 8, weights="exponential", seed=11)
        single = run_weighted_kd_choice(medium_n, 1, 1, weights="exponential", seed=11)
        assert multi.extra["weighted_gap"] <= single.extra["weighted_gap"]

    def test_heavy_tail_increases_gap(self, medium_n):
        constant = run_weighted_kd_choice(medium_n, 4, 8, weights="constant", seed=13)
        pareto = run_weighted_kd_choice(medium_n, 4, 8, weights="pareto", seed=13)
        assert pareto.extra["weighted_gap"] >= constant.extra["weighted_gap"] - 0.5
