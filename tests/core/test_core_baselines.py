"""Unit tests for the baseline allocation schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import (
    run_always_go_left,
    run_batch_random,
    run_d_choice,
    run_one_plus_beta,
    run_single_choice,
)


class TestSingleChoice:
    def test_conservation(self, small_n):
        result = run_single_choice(small_n, seed=1)
        assert result.total_balls_check()

    def test_default_balls_equals_bins(self, small_n):
        assert run_single_choice(small_n, seed=1).n_balls == small_n

    def test_message_cost_one_per_ball(self, small_n):
        result = run_single_choice(small_n, seed=1)
        assert result.messages == small_n
        assert result.messages_per_ball == pytest.approx(1.0)

    def test_deterministic_per_seed(self, small_n):
        a = run_single_choice(small_n, seed=9)
        b = run_single_choice(small_n, seed=9)
        assert np.array_equal(a.loads, b.loads)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            run_single_choice(0)
        with pytest.raises(ValueError):
            run_single_choice(8, n_balls=-1)

    def test_scheme_name(self, small_n):
        assert run_single_choice(small_n, seed=1).scheme == "single-choice"

    def test_max_load_reasonably_high(self, medium_n):
        # Single choice should produce a clearly higher max load than 2.
        result = run_single_choice(medium_n, seed=0)
        assert result.max_load >= 4


class TestDChoice:
    def test_conservation(self, small_n):
        assert run_d_choice(small_n, d=2, seed=1).total_balls_check()

    def test_scheme_name_mentions_d(self, small_n):
        assert run_d_choice(small_n, d=3, seed=1).scheme == "greedy[3]"

    def test_message_cost_d_per_ball(self, small_n):
        result = run_d_choice(small_n, d=4, seed=1)
        assert result.messages == 4 * small_n

    def test_rejects_d_below_one(self, small_n):
        with pytest.raises(ValueError):
            run_d_choice(small_n, d=0)

    def test_two_choice_beats_single_choice(self, medium_n):
        single = run_single_choice(medium_n, seed=4)
        double = run_d_choice(medium_n, d=2, seed=4)
        assert double.max_load < single.max_load

    def test_more_choices_never_hurt_much(self, medium_n):
        d2 = run_d_choice(medium_n, d=2, seed=4)
        d8 = run_d_choice(medium_n, d=8, seed=4)
        assert d8.max_load <= d2.max_load


class TestOnePlusBeta:
    def test_conservation(self, small_n):
        assert run_one_plus_beta(small_n, beta=0.5, seed=1).total_balls_check()

    def test_beta_zero_is_single_choice_cost(self, small_n):
        result = run_one_plus_beta(small_n, beta=0.0, seed=1)
        assert result.messages == small_n

    def test_beta_one_is_two_choice_cost(self, small_n):
        result = run_one_plus_beta(small_n, beta=1.0, seed=1)
        assert result.messages == 2 * small_n

    def test_invalid_beta_rejected(self, small_n):
        with pytest.raises(ValueError):
            run_one_plus_beta(small_n, beta=1.5)
        with pytest.raises(ValueError):
            run_one_plus_beta(small_n, beta=-0.1)

    def test_messages_between_single_and_double(self, small_n):
        result = run_one_plus_beta(small_n, beta=0.5, seed=1)
        assert small_n <= result.messages <= 2 * small_n

    def test_interpolates_max_load(self, medium_n):
        single = run_single_choice(medium_n, seed=2)
        mixed = run_one_plus_beta(medium_n, beta=0.8, seed=2)
        assert mixed.max_load <= single.max_load


class TestAlwaysGoLeft:
    def test_conservation(self, small_n):
        assert run_always_go_left(small_n, d=2, seed=1).total_balls_check()

    def test_rejects_more_groups_than_bins(self):
        with pytest.raises(ValueError):
            run_always_go_left(3, d=5)

    def test_message_cost_d_per_ball(self, small_n):
        result = run_always_go_left(small_n, d=3, seed=1)
        assert result.messages == 3 * small_n

    def test_beats_single_choice(self, medium_n):
        single = run_single_choice(medium_n, seed=6)
        agl = run_always_go_left(medium_n, d=2, seed=6)
        assert agl.max_load < single.max_load

    def test_comparable_to_greedy_d(self, medium_n):
        greedy = run_d_choice(medium_n, d=2, seed=8)
        agl = run_always_go_left(medium_n, d=2, seed=8)
        # Vöcking's scheme is at least as good as symmetric two-choice
        # asymptotically; at finite n allow a one-ball slack.
        assert agl.max_load <= greedy.max_load + 1


class TestBatchRandom:
    def test_conservation(self, small_n):
        assert run_batch_random(small_n, k=4, seed=1).total_balls_check()

    def test_scheme_records_k(self, small_n):
        result = run_batch_random(small_n, k=4, seed=1)
        assert result.k == 4
        assert result.d == 4
        assert "batch-random" in result.scheme

    def test_rounds_are_ceil_n_over_k(self, small_n):
        result = run_batch_random(small_n, k=6, seed=1)
        assert result.rounds == -(-small_n // 6)

    def test_rejects_bad_k(self, small_n):
        with pytest.raises(ValueError):
            run_batch_random(small_n, k=0)

    def test_distribution_matches_single_choice(self, medium_n):
        # SA(k, k) is distribution-identical to single choice; compare the
        # mean max load over a few seeds.
        batch = [run_batch_random(medium_n, k=8, seed=s).max_load for s in range(5)]
        single = [run_single_choice(medium_n, seed=100 + s).max_load for s in range(5)]
        assert abs(np.mean(batch) - np.mean(single)) <= 1.5
