"""Unit tests for repro.core.metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import metrics
from repro.core.process import run_kd_choice
from repro.core.types import AllocationResult


@pytest.fixture
def loads():
    return np.array([0, 1, 2, 2, 4], dtype=np.int64)


@pytest.fixture
def result(loads):
    return AllocationResult(
        loads=loads, scheme="test", n_bins=5, n_balls=int(loads.sum()), messages=20
    )


class TestAsLoads:
    def test_accepts_allocation_result(self, result, loads):
        assert np.array_equal(metrics.as_loads(result), loads)

    def test_accepts_plain_list(self):
        assert np.array_equal(metrics.as_loads([1, 2, 3]), np.array([1, 2, 3]))

    def test_rejects_two_dimensional_input(self):
        with pytest.raises(ValueError):
            metrics.as_loads(np.zeros((2, 2)))


class TestScalarMetrics:
    def test_max_load(self, loads):
        assert metrics.max_load(loads) == 4

    def test_min_load(self, loads):
        assert metrics.min_load(loads) == 0

    def test_average_load(self, loads):
        assert metrics.average_load(loads) == pytest.approx(1.8)

    def test_gap(self, loads):
        assert metrics.gap(loads) == pytest.approx(4 - 1.8)

    def test_empty_vector_edge_cases(self):
        empty = np.array([], dtype=np.int64)
        assert metrics.max_load(empty) == 0
        assert metrics.min_load(empty) == 0
        assert metrics.average_load(empty) == 0.0
        assert metrics.gap(empty) == 0.0
        assert metrics.empty_fraction(empty) == 0.0

    def test_empty_fraction(self, loads):
        assert metrics.empty_fraction(loads) == pytest.approx(0.2)


class TestDistributionMetrics:
    def test_load_profile_sorted_descending(self, loads):
        assert list(metrics.load_profile(loads)) == [4, 2, 2, 1, 0]

    def test_nu(self, loads):
        assert metrics.nu(loads, 0) == 5
        assert metrics.nu(loads, 1) == 4
        assert metrics.nu(loads, 2) == 3
        assert metrics.nu(loads, 3) == 1
        assert metrics.nu(loads, 5) == 0

    def test_nu_vector_matches_nu(self, loads):
        vector = metrics.nu_vector(loads)
        for y, value in enumerate(vector):
            assert value == metrics.nu(loads, y)

    def test_mu(self, loads):
        assert metrics.mu(loads, 1) == 9
        assert metrics.mu(loads, 2) == 5
        assert metrics.mu(loads, 4) == 1
        assert metrics.mu(loads, 6) == 0

    def test_mu_relation_to_nu(self, loads):
        # mu_y = sum_{h >= y} nu_h  (each bin contributes one ball per level).
        for y in range(1, 6):
            expected = sum(metrics.nu(loads, h) for h in range(y, 6))
            assert metrics.mu(loads, y) == expected

    def test_load_histogram(self, loads):
        assert metrics.load_histogram(loads) == {0: 1, 1: 1, 2: 2, 4: 1}

    def test_height_histogram_matches_nu(self, loads):
        histogram = metrics.height_histogram(loads)
        assert histogram == {1: 4, 2: 3, 3: 1, 4: 1}

    def test_height_histogram_empty(self):
        assert metrics.height_histogram(np.array([], dtype=np.int64)) == {}


class TestResultMetrics:
    def test_message_cost(self, result):
        assert metrics.message_cost(result) == 20

    def test_messages_per_ball(self, result):
        assert metrics.messages_per_ball(result) == pytest.approx(20 / 9)

    def test_summarize_contains_distribution_fields(self, result):
        summary = metrics.summarize(result)
        assert summary["max_load"] == 4
        assert summary["min_load"] == 0
        assert summary["empty_fraction"] == pytest.approx(0.2)
        assert "std_load" in summary

    def test_summarize_on_real_run(self):
        run = run_kd_choice(n_bins=128, k=2, d=4, seed=0)
        summary = metrics.summarize(run)
        assert summary["scheme"] == "(2,4)-choice"
        assert summary["max_load"] >= 1
