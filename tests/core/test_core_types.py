"""Unit tests for repro.core.types (ProcessParams and AllocationResult)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.types import AllocationResult, ProcessParams


class TestProcessParams:
    def test_valid_parameters_accepted(self):
        params = ProcessParams(n_bins=100, n_balls=100, k=2, d=5)
        assert params.k == 2
        assert params.d == 5

    def test_rejects_k_greater_than_d(self):
        with pytest.raises(ValueError):
            ProcessParams(n_bins=10, n_balls=10, k=4, d=3)

    def test_rejects_zero_k(self):
        with pytest.raises(ValueError):
            ProcessParams(n_bins=10, n_balls=10, k=0, d=3)

    def test_rejects_d_larger_than_bins(self):
        with pytest.raises(ValueError):
            ProcessParams(n_bins=4, n_balls=4, k=1, d=5)

    def test_rejects_negative_balls(self):
        with pytest.raises(ValueError):
            ProcessParams(n_bins=4, n_balls=-1, k=1, d=2)

    def test_rejects_nonpositive_bins(self):
        with pytest.raises(ValueError):
            ProcessParams(n_bins=0, n_balls=0, k=1, d=1)

    def test_d_k_formula(self):
        params = ProcessParams(n_bins=100, n_balls=100, k=3, d=5)
        assert params.d_k == pytest.approx(5 / 2)

    def test_d_k_infinite_when_k_equals_d(self):
        params = ProcessParams(n_bins=100, n_balls=100, k=4, d=4)
        assert math.isinf(params.d_k)

    def test_rounds_is_ceiling_of_balls_over_k(self):
        params = ProcessParams(n_bins=100, n_balls=103, k=4, d=8)
        assert params.rounds == 26

    def test_rounds_exact_division(self):
        params = ProcessParams(n_bins=100, n_balls=100, k=4, d=8)
        assert params.rounds == 25

    def test_message_cost_is_d_per_round(self):
        params = ProcessParams(n_bins=100, n_balls=100, k=4, d=8)
        assert params.message_cost == 25 * 8


class TestAllocationResult:
    def _result(self, loads, **kwargs):
        loads = np.asarray(loads)
        defaults = dict(
            loads=loads,
            scheme="test",
            n_bins=loads.shape[0],
            n_balls=int(loads.sum()),
        )
        defaults.update(kwargs)
        return AllocationResult(**defaults)

    def test_loads_converted_to_int64_array(self):
        result = self._result([1, 2, 0])
        assert isinstance(result.loads, np.ndarray)
        assert result.loads.dtype == np.int64

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            AllocationResult(loads=np.array([1, 2]), scheme="x", n_bins=3, n_balls=3)

    def test_rejects_two_dimensional_loads(self):
        with pytest.raises(ValueError):
            AllocationResult(
                loads=np.zeros((2, 2)), scheme="x", n_bins=2, n_balls=0
            )

    def test_max_load(self):
        assert self._result([1, 5, 2]).max_load == 5

    def test_average_and_gap(self):
        result = self._result([0, 4, 2])
        assert result.average_load == pytest.approx(2.0)
        assert result.gap == pytest.approx(2.0)

    def test_messages_per_ball(self):
        result = self._result([1, 1, 2], messages=8)
        assert result.messages_per_ball == pytest.approx(2.0)

    def test_messages_per_ball_zero_balls(self):
        result = AllocationResult(
            loads=np.zeros(3, dtype=int), scheme="x", n_bins=3, n_balls=0, messages=5
        )
        assert result.messages_per_ball == 0.0

    def test_sorted_loads_descending(self):
        result = self._result([1, 5, 2])
        assert list(result.sorted_loads()) == [5, 2, 1]

    def test_nu(self):
        result = self._result([0, 1, 2, 2])
        assert result.nu(0) == 4
        assert result.nu(1) == 3
        assert result.nu(2) == 2
        assert result.nu(3) == 0

    def test_total_balls_check_true(self):
        assert self._result([1, 2, 3]).total_balls_check()

    def test_total_balls_check_false_when_inconsistent(self):
        result = AllocationResult(
            loads=np.array([1, 1, 1]), scheme="x", n_bins=3, n_balls=5
        )
        assert not result.total_balls_check()

    def test_summary_contains_key_fields(self):
        summary = self._result([1, 2, 3], k=2, d=4, messages=12).summary()
        assert summary["k"] == 2
        assert summary["d"] == 4
        assert summary["max_load"] == 3
        assert summary["messages"] == 12
        assert "messages_per_ball" in summary
