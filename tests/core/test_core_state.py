"""Unit tests for repro.core.state.BinState."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.state import BinState


class TestConstruction:
    def test_empty_state_has_zero_balls(self):
        state = BinState(10)
        assert state.total_balls == 0
        assert state.loads == [0] * 10

    def test_n_bins_property(self):
        assert BinState(7).n_bins == 7

    def test_len_matches_n_bins(self):
        assert len(BinState(13)) == 13

    def test_initial_loads_respected(self):
        state = BinState(4, loads=[3, 1, 0, 2])
        assert state.loads == [3, 1, 0, 2]
        assert state.total_balls == 6

    def test_rejects_nonpositive_bins(self):
        with pytest.raises(ValueError):
            BinState(0)
        with pytest.raises(ValueError):
            BinState(-3)

    def test_rejects_mismatched_loads_length(self):
        with pytest.raises(ValueError):
            BinState(3, loads=[1, 2])

    def test_rejects_negative_loads(self):
        with pytest.raises(ValueError):
            BinState(2, loads=[1, -1])


class TestPlacement:
    def test_place_returns_height(self):
        state = BinState(3)
        assert state.place(0) == 1
        assert state.place(0) == 2
        assert state.place(1) == 1

    def test_place_updates_total(self):
        state = BinState(3)
        state.place(2)
        state.place(2)
        assert state.total_balls == 2

    def test_place_many_returns_heights_in_order(self):
        state = BinState(4)
        heights = state.place_many([1, 1, 2, 1])
        assert heights == [1, 2, 1, 3]

    def test_remove_decrements_load(self):
        state = BinState(2, loads=[2, 0])
        state.remove(0)
        assert state.load_of(0) == 1
        assert state.total_balls == 1

    def test_remove_from_empty_bin_raises(self):
        state = BinState(2)
        with pytest.raises(ValueError):
            state.remove(1)

    def test_copy_is_independent(self):
        state = BinState(3, loads=[1, 0, 2])
        clone = state.copy()
        clone.place(0)
        assert state.load_of(0) == 1
        assert clone.load_of(0) == 2
        assert clone.total_balls == state.total_balls + 1


class TestSortedViewsAndCounters:
    def test_sorted_loads_descending(self):
        state = BinState(4, loads=[1, 3, 0, 2])
        assert list(state.sorted_loads()) == [3, 2, 1, 0]

    def test_max_min_average(self):
        state = BinState(4, loads=[1, 3, 0, 2])
        assert state.max_load() == 3
        assert state.min_load() == 0
        assert state.average_load() == pytest.approx(1.5)

    def test_gap(self):
        state = BinState(4, loads=[1, 3, 0, 2])
        assert state.gap() == pytest.approx(1.5)

    def test_nu_counts_bins_at_or_above_threshold(self):
        state = BinState(5, loads=[0, 1, 2, 2, 4])
        assert state.nu(0) == 5
        assert state.nu(1) == 4
        assert state.nu(2) == 3
        assert state.nu(3) == 1
        assert state.nu(5) == 0

    def test_mu_counts_balls_at_or_above_height(self):
        state = BinState(5, loads=[0, 1, 2, 2, 4])
        # heights present: bin loads give one ball per height 1..load
        assert state.mu(1) == 9  # all balls
        assert state.mu(2) == 9 - state.nu(1)  # remove the height-1 balls
        assert state.mu(4) == 1
        assert state.mu(5) == 0

    def test_mu_at_nonpositive_height_is_total(self):
        state = BinState(3, loads=[2, 1, 0])
        assert state.mu(0) == 3
        assert state.mu(-2) == 3

    def test_nu_vector_matches_pointwise_nu(self):
        state = BinState(6, loads=[0, 1, 1, 2, 3, 3])
        vector = state.nu_vector()
        assert len(vector) == state.max_load() + 1
        for y, value in enumerate(vector):
            assert value == state.nu(y)

    def test_load_histogram(self):
        state = BinState(5, loads=[0, 1, 1, 2, 0])
        assert state.load_histogram() == {0: 2, 1: 2, 2: 1}

    def test_fraction_empty(self):
        state = BinState(4, loads=[0, 0, 1, 3])
        assert state.fraction_empty() == pytest.approx(0.5)

    def test_as_array_dtype_and_values(self):
        state = BinState(3, loads=[5, 0, 1])
        arr = state.as_array()
        assert arr.dtype == np.int64
        assert list(arr) == [5, 0, 1]


class TestMajorizationHelpers:
    def test_prefix_sums_of_sorted_vector(self):
        state = BinState(4, loads=[1, 3, 0, 2])
        assert list(state.prefix_sums()) == [3, 5, 6, 6]

    def test_majorizes_reflexive(self):
        state = BinState(4, loads=[2, 2, 1, 1])
        assert state.majorizes(state.copy())

    def test_majorizes_detects_more_concentrated_state(self):
        concentrated = BinState(4, loads=[4, 0, 0, 0])
        balanced = BinState(4, loads=[1, 1, 1, 1])
        assert concentrated.majorizes(balanced)
        assert not balanced.majorizes(concentrated)

    def test_majorizes_requires_equal_bin_count(self):
        with pytest.raises(ValueError):
            BinState(3).majorizes(BinState(4))
