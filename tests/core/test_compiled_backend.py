"""Compiled-backend availability, guards and graceful degradation.

The compiled tier's contract has two halves.  On a machine with a C
compiler it must be seed-for-seed identical to the scalar reference (that
is ``test_engine_equivalence.TestCompiledEquivalence``); everywhere else it
must *disappear cleanly*: every capability probe returns a reason string,
``engine="auto"`` silently degrades to the usual vectorized/scalar choice,
and only a *forced* ``engine="compiled"`` raises — with the guard's reason,
never a compiler traceback.  These tests pin the second half by simulating
a pure-python host via ``REPRO_COMPILED_DISABLE`` (honoured fresh on every
call, so monkeypatching works without reloading modules).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    SchemeSpec,
    SchemeSpecError,
    compiled_fastpath_reason,
    compiled_unsupported_reason,
    get_scheme,
    registry_dump,
    simulate,
)
from repro.api.engine import resolve_engine
from repro.core.compiled import (
    CompiledUnavailable,
    backend_unavailable_reason,
    describe_backend,
    load_backend,
)
from repro.online import OnlineAllocator, OnlineAllocatorError

KD_PARAMS = {"n_bins": 64, "k": 2, "d": 4, "n_balls": 200}


@pytest.fixture
def no_backend(monkeypatch):
    """Make this test run as if on a host without the compiled backend."""
    monkeypatch.setenv("REPRO_COMPILED_DISABLE", "1")


class TestDisabledBackend:
    def test_load_backend_raises_with_reason(self, no_backend):
        with pytest.raises(CompiledUnavailable, match="REPRO_COMPILED_DISABLE"):
            load_backend()

    def test_unavailable_reason_is_a_string_not_an_error(self, no_backend):
        reason = backend_unavailable_reason()
        assert isinstance(reason, str) and "REPRO_COMPILED_DISABLE" in reason

    def test_describe_backend_reports_unavailable(self, no_backend):
        info = describe_backend()
        assert info["available"] is False
        assert "REPRO_COMPILED_DISABLE" in info["reason"]

    def test_forced_compiled_raises_cleanly(self, no_backend):
        spec = SchemeSpec(scheme="kd_choice", params=KD_PARAMS, seed=0,
                          engine="compiled")
        with pytest.raises(SchemeSpecError, match="compiled backend unavailable"):
            simulate(spec)

    def test_auto_degrades_to_vectorized(self, no_backend, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "compiled")
        spec = SchemeSpec(scheme="kd_choice", params=KD_PARAMS, seed=0)
        assert resolve_engine(spec) == "vectorized"
        result = simulate(spec)  # must not raise
        assert result.extra.get("engine") != "compiled"

    def test_online_forced_compiled_raises_cleanly(self, no_backend):
        spec = SchemeSpec(scheme="kd_choice", params=KD_PARAMS, seed=0,
                          engine="compiled")
        with pytest.raises(OnlineAllocatorError, match="compiled backend unavailable"):
            OnlineAllocator(spec)

    def test_online_auto_preference_degrades(self, no_backend, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "compiled")
        allocator = OnlineAllocator(
            SchemeSpec(scheme="kd_choice", params=KD_PARAMS, seed=0)
        )
        assert allocator.stepper.kernel_mode == "numpy"
        allocator.place_batch(KD_PARAMS["n_balls"])  # streams fine

    def test_spec_construction_stays_machine_independent(self, no_backend):
        # probe_backend=False at construction: a compiled spec for a covered
        # scheme is structurally valid even where the backend cannot load.
        spec = SchemeSpec(scheme="kd_choice", params=KD_PARAMS, seed=0,
                          engine="compiled")
        assert spec.engine == "compiled"

    def test_registry_dump_is_machine_independent(self, no_backend):
        entry = next(
            e for e in registry_dump()["schemes"] if e["name"] == "kd_choice"
        )
        assert entry["compiled"] is True
        assert entry["compiled_unsupported_reason"] is None

    def test_set_kernel_mode_compiled_raises(self, no_backend):
        from repro.core.kernels.kd import KDChoiceStepper

        stepper = KDChoiceStepper(n_bins=16, k=1, d=2, n_balls=16, seed=0)
        with pytest.raises(CompiledUnavailable):
            stepper.set_kernel_mode("compiled")
        assert stepper.kernel_mode == "numpy"


class TestCapabilityGuards:
    def test_uncovered_scheme_names_available_engines(self):
        info = get_scheme("greedy_kd_choice")
        reason = compiled_unsupported_reason(
            info, None, {"n_bins": 8, "k": 1, "d": 2}, probe_backend=False
        )
        assert "no compiled engine" in reason
        assert "scalar, vectorized" in reason

    def test_nonstrict_policy_rejected(self):
        info = get_scheme("kd_choice")
        reason = compiled_unsupported_reason(
            info, "greedy", KD_PARAMS, probe_backend=False
        )
        assert "strict" in reason

    def test_width_guard_rejects_oversized_d(self):
        info = get_scheme("kd_choice")
        params = dict(KD_PARAMS, d=4096, k=2)
        reason = compiled_unsupported_reason(info, None, params,
                                             probe_backend=False)
        assert reason is not None and "d" in reason
        with pytest.raises(SchemeSpecError):
            SchemeSpec(scheme="kd_choice", params=params, seed=0,
                       engine="compiled")

    def test_callable_threshold_is_soft_guarded_only(self):
        # A callable threshold keeps auto off the compiled path (fastpath
        # reason) but stays inside the hard envelope: forcing compiled runs
        # the per-ball drive path, bit-identically.
        info = get_scheme("threshold_adaptive")
        params = {"n_bins": 32, "n_balls": 64,
                  "threshold": lambda average: int(average) + 1}
        assert compiled_unsupported_reason(info, None, params,
                                           probe_backend=False) is None
        assert compiled_fastpath_reason(info, None, params,
                                        probe_backend=False) is not None

    def test_set_kernel_mode_rejects_unknown_mode(self):
        from repro.core.kernels.kd import KDChoiceStepper

        stepper = KDChoiceStepper(n_bins=16, k=1, d=2, n_balls=16, seed=0)
        with pytest.raises(ValueError, match="kernel_mode"):
            stepper.set_kernel_mode("turbo")


@pytest.mark.skipif(
    backend_unavailable_reason() is not None,
    reason=f"compiled backend unavailable: {backend_unavailable_reason()}",
)
class TestAvailableBackend:
    def test_simulate_forced_compiled_matches_scalar(self):
        scalar = simulate(
            SchemeSpec(scheme="kd_choice", params=KD_PARAMS, seed=3,
                       engine="scalar")
        )
        compiled = simulate(
            SchemeSpec(scheme="kd_choice", params=KD_PARAMS, seed=3,
                       engine="compiled")
        )
        assert np.array_equal(scalar.loads, compiled.loads)
        assert compiled.extra["engine"] == "compiled"

    def test_auto_preference_selects_compiled(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "compiled")
        spec = SchemeSpec(scheme="kd_choice", params=KD_PARAMS, seed=3)
        assert resolve_engine(spec) == "compiled"

    def test_auto_preference_scalar_pins_scalar(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        spec = SchemeSpec(scheme="kd_choice", params=KD_PARAMS, seed=3)
        assert resolve_engine(spec) == "scalar"

    def test_describe_backend_reports_available(self):
        info = describe_backend()
        assert info["available"] is True
        assert info["compiler"]
        assert "reason" not in info

    def test_disable_toggle_is_honoured_fresh(self, monkeypatch):
        # Availability flips with the env var without any module reload:
        # the cached (ffi, lib) must not shadow the operator escape hatch.
        assert backend_unavailable_reason() is None
        monkeypatch.setenv("REPRO_COMPILED_DISABLE", "1")
        assert backend_unavailable_reason() is not None
        monkeypatch.delenv("REPRO_COMPILED_DISABLE")
        assert backend_unavailable_reason() is None
