"""The top-level ``run_*`` helpers are deprecated shims and must say so."""

from __future__ import annotations

import warnings

import pytest

import repro


@pytest.mark.parametrize("name", repro._DEPRECATED_RUNNERS)
def test_every_shim_is_wrapped(name):
    shim = getattr(repro, name)
    assert hasattr(shim, "__wrapped__"), f"repro.{name} is not a warning shim"
    assert ".. deprecated::" in (shim.__doc__ or "")


def test_run_kd_choice_warns_and_still_works():
    with pytest.warns(DeprecationWarning, match="repro.run_kd_choice"):
        result = repro.run_kd_choice(n_bins=256, k=2, d=4, seed=0)
    assert result.total_balls_check()


def test_shim_matches_undecorated_implementation():
    from repro.core.process import run_kd_choice as core_run

    with pytest.warns(DeprecationWarning):
        shimmed = repro.run_kd_choice(n_bins=128, k=1, d=2, seed=9)
    direct = core_run(n_bins=128, k=1, d=2, seed=9)
    assert (shimmed.loads == direct.loads).all()


def test_core_implementations_do_not_warn():
    from repro.core.process import run_kd_choice as core_run

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        core_run(n_bins=128, k=1, d=2, seed=0)


def test_spec_api_does_not_warn():
    from repro.api import SchemeSpec, simulate

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        simulate(SchemeSpec(scheme="kd_choice",
                            params={"n_bins": 128, "k": 2, "d": 4}, seed=0))
