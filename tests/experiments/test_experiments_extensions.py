"""Unit tests for the extension experiment recipes."""

from __future__ import annotations

import pytest

from repro.experiments.extensions import (
    churn_table,
    exact_validation_table,
    open_question_table,
    run_churn_experiment,
    run_exact_validation,
    run_open_question_heavy,
    run_staleness_experiment,
    run_weighted_experiment,
    staleness_table,
    weighted_table,
)


class TestWeightedExperiment:
    def test_point_structure(self):
        points = run_weighted_experiment(
            n=256, configurations=((1, 2),), weight_distributions=("constant", "exponential"),
            trials=2, seed=0,
        )
        assert len(points) == 2
        for point in points:
            assert point.mean_weighted_gap >= 0
            assert point.mean_unit_max_load >= 1

    def test_constant_weights_have_smallest_gap(self):
        points = run_weighted_experiment(
            n=512, configurations=((4, 8),),
            weight_distributions=("constant", "pareto"), trials=2, seed=1,
        )
        by_dist = {p.weight_distribution: p for p in points}
        assert by_dist["constant"].mean_weighted_gap <= by_dist["pareto"].mean_weighted_gap + 0.5

    def test_table_rendering(self):
        points = run_weighted_experiment(
            n=128, configurations=((1, 2),), weight_distributions=("constant",), trials=1, seed=2
        )
        assert "mean_weighted_gap" in weighted_table(points).to_text()


class TestStalenessExperiment:
    def test_sweep_structure(self):
        points = run_staleness_experiment(
            n=512, stale_rounds_values=(1, 8, 64), trials=2, seed=0
        )
        assert [p.stale_rounds for p in points] == [1, 8, 64]

    def test_staleness_monotone_tendency(self):
        points = run_staleness_experiment(
            n=1024, stale_rounds_values=(1, 256), trials=3, seed=1
        )
        fresh, stale = points[0], points[-1]
        assert stale.mean_max_load >= fresh.mean_max_load

    def test_table_rendering(self):
        points = run_staleness_experiment(n=256, stale_rounds_values=(1,), trials=1, seed=2)
        assert "stale_rounds" in staleness_table(points).to_text()


class TestChurnExperiment:
    def test_structure_and_population(self):
        points = run_churn_experiment(
            n=128, configurations=((1, 2),), rounds=256, trials=1, seed=0
        )
        point = points[0]
        assert point.final_balls == 128  # balanced churn keeps the population
        assert point.steady_gap >= 0

    def test_two_choice_churn_not_worse_than_random_churn(self):
        points = run_churn_experiment(
            n=128, configurations=((1, 1), (1, 2)), rounds=1024, trials=1, seed=1
        )
        by_config = {(p.k, p.d): p for p in points}
        assert by_config[(1, 2)].steady_gap <= by_config[(1, 1)].steady_gap + 0.5

    def test_table_rendering(self):
        points = run_churn_experiment(n=64, configurations=((1, 2),), rounds=64, trials=1, seed=2)
        assert "steady_gap" in churn_table(points).to_text()


class TestOpenQuestionExperiment:
    def test_covers_both_regimes(self):
        points = run_open_question_heavy(
            n=256, load_factors=(1, 4), proven=((2, 4),), open_cases=((3, 4),), trials=2, seed=0
        )
        regimes = {p.regime for p in points}
        assert regimes == {"proven (d>=2k)", "open (d<2k)"}

    def test_open_case_gap_stays_bounded(self):
        # The simulation-level answer to the Section 7 open question: the gap
        # does not blow up with the load factor even for d < 2k.
        points = run_open_question_heavy(
            n=512, load_factors=(1, 8), proven=(), open_cases=((8, 9),), trials=2, seed=1
        )
        gaps = [p.mean_gap for p in points]
        assert max(gaps) - min(gaps) <= 3.0

    def test_table_rendering(self):
        points = run_open_question_heavy(
            n=128, load_factors=(1,), proven=((2, 4),), open_cases=(), trials=1, seed=2
        )
        assert "mean_gap" in open_question_table(points).to_text()


class TestExactValidation:
    def test_points_close_to_exact(self):
        points = run_exact_validation(instances=((4, 2, 3),), trials=2000, seed=0)
        point = points[0]
        assert point.total_variation < 0.08
        assert point.exact_expected_max == pytest.approx(point.empirical_expected_max, abs=0.15)

    def test_table_rendering(self):
        points = run_exact_validation(instances=((4, 1, 2),), trials=500, seed=1)
        assert "total_variation" in exact_validation_table(points).to_text()
