"""Unit tests for the remaining experiment recipes (regimes, heavy, tradeoff,
majorization, applications, ablation)."""

from __future__ import annotations

import pytest

from repro.experiments.ablation import ablation_table, run_policy_ablation
from repro.experiments.applications import (
    run_scheduling_experiment,
    run_storage_experiment,
    scheduling_table,
    storage_table,
)
from repro.experiments.heavy import heavy_table, run_heavy_case
from repro.experiments.majorization_exp import majorization_table, run_majorization_chain
from repro.experiments.regimes import DEFAULT_CONFIGS, regime_table, run_regime_scaling
from repro.experiments.tradeoff import default_schemes, run_tradeoff, tradeoff_table


class TestRegimes:
    def test_default_configs_cover_both_regimes(self):
        names = [config.name for config in DEFAULT_CONFIGS]
        assert any("d_k=2" in name or "d_k" in name for name in names)
        assert len(names) >= 3

    def test_config_parameters_valid(self):
        for config in DEFAULT_CONFIGS:
            for n in (256, 4096):
                k, d = config.parameters(n)
                assert 1 <= k <= d <= n

    def test_scaling_points_structure(self):
        points = run_regime_scaling(n_values=(256, 1024), configs=DEFAULT_CONFIGS[:2],
                                    trials=2, seed=0)
        assert len(points) == 4
        for point in points:
            assert point.min_max_load <= point.mean_max_load <= point.max_max_load
            assert point.predicted_leading_term >= 0

    def test_max_load_grows_with_n_for_single_choice(self):
        points = run_regime_scaling(
            n_values=(256, 16384), configs=[DEFAULT_CONFIGS[-1]], trials=2, seed=1
        )
        small, large = points[0], points[1]
        assert large.mean_max_load >= small.mean_max_load

    def test_table_rendering(self):
        points = run_regime_scaling(n_values=(256,), configs=DEFAULT_CONFIGS[:1], trials=2, seed=0)
        text = regime_table(points).to_text()
        assert "mean_max_load" in text


class TestHeavyCase:
    def test_requires_d_at_least_2k(self):
        with pytest.raises(ValueError):
            run_heavy_case(n=128, configurations=((3, 5),), trials=1)

    def test_gap_roughly_flat_in_load_factor(self):
        points = run_heavy_case(
            n=1024, load_factors=(1, 8), configurations=((2, 4),), trials=2, seed=0
        )
        light, heavy = points[0], points[1]
        # Theorem 2: the gap stays O(ln ln n); allow generous slack but it
        # must not grow proportionally to the load factor (which is 8x).
        assert heavy.mean_gap <= light.mean_gap + 3.0

    def test_sandwich_gaps_reported(self):
        points = run_heavy_case(
            n=512, load_factors=(2,), configurations=((2, 4),), trials=2, seed=1
        )
        point = points[0]
        assert point.sandwich_lower_gap > 0
        assert point.sandwich_upper_gap > 0
        assert point.bound_lower <= point.bound_upper

    def test_table_rendering(self):
        points = run_heavy_case(n=512, load_factors=(1,), configurations=((2, 4),), trials=1, seed=2)
        assert "mean_gap" in heavy_table(points).to_text()


class TestTradeoff:
    def test_default_schemes_include_headline_configurations(self):
        schemes = default_schemes(4096)
        names = " ".join(schemes)
        assert "single-choice" in names
        assert "greedy[2]" in names
        assert "(k,2k)-choice" in names
        assert "(k,k+1)-choice" in names

    def test_points_have_cost_and_load(self):
        points = run_tradeoff(n=1024, trials=2, seed=0)
        assert len(points) >= 8
        for point in points:
            assert point.mean_max_load >= 1
            assert point.mean_messages_per_ball > 0

    def test_kd_choice_dominates_single_choice(self):
        points = {p.scheme: p for p in run_tradeoff(n=2048, trials=2, seed=1)}
        single = points["single-choice"]
        kd = next(p for name, p in points.items() if name.startswith("(k,2k)"))
        assert kd.mean_max_load < single.mean_max_load
        # and it costs about 2 probes per ball
        assert kd.mean_messages_per_ball == pytest.approx(2.0, abs=0.3)

    def test_table_rendering(self):
        points = run_tradeoff(n=512, trials=1, seed=2)
        assert "mean_messages_per_ball" in tradeoff_table(points).to_text()


class TestMajorizationChain:
    def test_chain_structure(self):
        experiments = run_majorization_chain(
            n=512, configurations=((3, 5),), trials=4, seed=0
        )
        assert len(experiments) == 3
        claims = [e.claim for e in experiments]
        assert any("A(1,3) <=mj A(3,5)" in c for c in claims)

    def test_reports_mostly_consistent(self):
        experiments = run_majorization_chain(
            n=1024, configurations=((3, 5),), trials=6, seed=1
        )
        consistent = sum(1 for e in experiments if e.report.consistent)
        assert consistent >= 2

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            run_majorization_chain(n=128, configurations=((4, 4),), trials=2)

    def test_table_rendering(self):
        experiments = run_majorization_chain(n=256, configurations=((3, 5),), trials=3, seed=2)
        assert "prefix_fraction" in majorization_table(experiments).to_text()


class TestApplications:
    def test_scheduling_experiment_structure(self):
        comparisons = run_scheduling_experiment(
            n_workers=16, tasks_per_job_values=(4,), n_jobs=60, seed=0
        )
        assert len(comparisons) == 1
        reports = comparisons[0].reports
        assert any("per-task" in name for name in reports)
        assert any("batch" in name for name in reports)

    def test_scheduling_batch_not_worse_than_per_task_at_high_parallelism(self):
        comparisons = run_scheduling_experiment(
            n_workers=32, tasks_per_job_values=(16,), n_jobs=150, utilization=0.7, seed=1
        )
        reports = comparisons[0].reports
        per_task = next(v for k, v in reports.items() if "per-task" in k)
        batch = next(v for k, v in reports.items() if k.startswith("batch"))
        assert batch.mean_response <= per_task.mean_response * 1.1

    def test_scheduling_invalid_utilization(self):
        with pytest.raises(ValueError):
            run_scheduling_experiment(utilization=1.5)

    def test_scheduling_table_rendering(self):
        comparisons = run_scheduling_experiment(
            n_workers=8, tasks_per_job_values=(2,), n_jobs=30, seed=2
        )
        assert "mean_response" in scheduling_table(comparisons).to_text()

    def test_storage_experiment_structure(self):
        comparisons = run_storage_experiment(
            n_servers=64, n_files=500, replica_values=(3,), seed=0
        )
        reports = comparisons[0].reports
        assert any("(k,d)-choice" in name for name in reports)
        assert any("per-replica" in name for name in reports)

    def test_storage_kd_choice_cheaper_lookup_than_two_choice(self):
        comparisons = run_storage_experiment(
            n_servers=128, n_files=1000, replica_values=(3,), seed=1
        )
        reports = comparisons[0].reports
        two_choice = next(v for k, v in reports.items() if "per-replica" in k)
        kd = next(v for k, v in reports.items() if "d=k+1" in k)
        assert kd.mean_lookup_cost < two_choice.mean_lookup_cost
        assert kd.placement_messages < two_choice.placement_messages

    def test_storage_table_rendering(self):
        comparisons = run_storage_experiment(
            n_servers=32, n_files=100, replica_values=(2,), seed=2
        )
        assert "mean_lookup_cost" in storage_table(comparisons).to_text()


class TestAblation:
    def test_points_structure(self):
        points = run_policy_ablation(n=512, configurations=((2, 3), (8, 9)), trials=2, seed=0)
        assert len(points) == 2
        for point in points:
            assert point.strict_mean >= 1
            assert point.greedy_mean >= 1

    def test_greedy_never_much_worse_for_k_near_d(self):
        points = run_policy_ablation(n=1024, configurations=((8, 9),), trials=3, seed=1)
        point = points[0]
        assert point.greedy_mean <= point.strict_mean + 0.5

    def test_table_rendering(self):
        points = run_policy_ablation(n=256, configurations=((2, 3),), trials=1, seed=2)
        assert "improvement" in ablation_table(points).to_text()
