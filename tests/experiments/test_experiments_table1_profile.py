"""Unit tests for the Table 1 and Figure 1/2 experiment recipes."""

from __future__ import annotations

import pytest

from repro.experiments.load_profile import downsample_profile, run_load_profile
from repro.experiments.table1 import (
    PAPER_TABLE1,
    TABLE1_D_VALUES,
    TABLE1_K_VALUES,
    TABLE1_N,
    run_table1,
    table1_cell,
)


class TestTable1Constants:
    def test_paper_problem_size(self):
        assert TABLE1_N == 196608

    def test_grid_dimensions_match_paper(self):
        assert len(TABLE1_K_VALUES) == 15
        assert len(TABLE1_D_VALUES) == 10

    def test_reference_cells_match_known_values(self):
        assert PAPER_TABLE1[(1, 1)] == (7, 8, 9)
        assert PAPER_TABLE1[(1, 2)] == (3, 4)
        assert PAPER_TABLE1[(8, 9)] == (4,)
        assert PAPER_TABLE1[(192, 193)] == (5, 6)

    def test_reference_table_has_no_invalid_cells(self):
        for (k, d) in PAPER_TABLE1:
            assert k <= d
            assert k in TABLE1_K_VALUES
            assert d in TABLE1_D_VALUES


class TestTable1Cell:
    def test_cell_runs_requested_trials(self):
        cell = table1_cell(n=256, k=2, d=4, trials=3, seed=0)
        assert len(cell.max_loads) == 3

    def test_cell_text_format(self):
        cell = table1_cell(n=256, k=1, d=2, trials=3, seed=0)
        assert all(part.strip().isdigit() for part in cell.text.split(","))

    def test_invalid_cell_rejected(self):
        with pytest.raises(ValueError):
            table1_cell(n=64, k=5, d=3)

    def test_deterministic_for_seed(self):
        a = table1_cell(n=256, k=2, d=4, trials=3, seed=7)
        b = table1_cell(n=256, k=2, d=4, trials=3, seed=7)
        assert a.max_loads == b.max_loads


class TestRunTable1:
    def test_small_grid_shape(self):
        result = run_table1(n=256, trials=2, k_values=[1, 2], d_values=[1, 2, 3, 5], seed=0)
        # Valid cells: (1,1), (1,2), (1,3), (1,5), (2,3), (2,5)  — (2,2) is a
        # dash in the paper and therefore skipped.
        assert set(result.cells) == {(1, 1), (1, 2), (1, 3), (1, 5), (2, 3), (2, 5)}

    def test_grid_rendering_contains_cells(self):
        result = run_table1(n=256, trials=2, k_values=[1], d_values=[1, 2], seed=0)
        text = result.to_text()
        assert "k = 1" in text
        assert "d = 2" in text

    def test_two_choice_beats_single_choice_in_grid(self):
        result = run_table1(n=2048, trials=3, k_values=[1], d_values=[1, 2], seed=1)
        single = max(result.cells[(1, 1)].max_loads)
        double = max(result.cells[(1, 2)].max_loads)
        assert double < single

    def test_qualitative_match_with_paper_rows(self):
        # At a smaller n the absolute values can only be <= the paper's
        # (loads grow with n), and the qualitative ordering must hold:
        # (8, 9) is worse than (8, 17)-and-beyond cells.
        result = run_table1(n=3 * 2 ** 10, trials=3, k_values=[8], d_values=[9, 17, 65], seed=2)
        assert max(result.cells[(8, 9)].max_loads) >= max(result.cells[(8, 17)].max_loads)
        assert max(result.cells[(8, 65)].max_loads) <= 2


class TestLoadProfiles:
    def test_downsample_keeps_rank_one(self):
        import numpy as np

        profile = np.array([5, 4, 3, 2, 1, 0])
        points = downsample_profile(profile, points=3)
        assert points[0] == (1, 5)
        assert all(1 <= rank <= 6 for rank, _ in points)

    def test_downsample_empty(self):
        import numpy as np

        assert downsample_profile(np.array([], dtype=int)) == []

    def test_run_load_profile_series(self):
        result = run_load_profile(n=2048, configurations=((4, 8), (16, 17)), seed=0)
        assert len(result.series) == 2
        for series in result.series:
            assert series.max_load >= 1
            assert series.profile_points[0][0] == 1
            assert series.profile_points[0][1] == series.max_load

    def test_figure_decompositions_consistent(self):
        result = run_load_profile(n=2048, configurations=((4, 8),), seed=1)
        series = result.series[0]
        fig1 = series.figure1_decomposition()
        assert fig1["B_beta0"] + fig1["B1_minus_Bbeta0"] == pytest.approx(fig1["max_load"])
        fig2 = series.figure2_decomposition()
        assert fig2["max_load"] >= fig2["B_gamma_star"]

    def test_landmarks_ordered(self):
        result = run_load_profile(n=4096, configurations=((16, 17),), seed=2)
        series = result.series[0]
        # gamma* = 4n/d_k < n and gamma0 = n/d; for (16,17) gamma* > gamma0.
        assert series.gamma_star_ > series.gamma0

    def test_as_records_round_trip(self):
        result = run_load_profile(n=1024, configurations=((4, 8),), seed=3)
        records = result.as_records()
        assert records[0]["k"] == 4
        assert records[0]["d"] == 8
        assert "B_at_beta0" in records[0]
