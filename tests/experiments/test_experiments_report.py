"""Unit tests for the one-shot reproduction report."""

from __future__ import annotations

import pytest

from repro.experiments.report import REPORT_SECTIONS, generate_report


class TestReportSections:
    def test_every_section_has_title_and_builder(self):
        for key, (title, builder) in REPORT_SECTIONS.items():
            assert isinstance(key, str) and key
            assert isinstance(title, str) and title
            assert callable(builder)

    def test_all_paper_artefacts_covered(self):
        # The report must include a section for each artefact class listed in
        # DESIGN.md: Table 1, the figures, both theorems, the majorization
        # chain, the trade-off, both applications and the ablation.
        for key in (
            "table1", "profiles", "regimes", "heavy", "majorization",
            "tradeoff", "scheduling", "storage", "ablation",
        ):
            assert key in REPORT_SECTIONS


class TestGenerateReport:
    def test_single_section_report(self):
        report = generate_report(seed=0, sections=["exact"])
        assert len(report.sections) == 1
        assert report.section("exact").body
        assert "total_variation" in report.section("exact").body

    def test_subset_report_renders_markdown(self):
        report = generate_report(seed=1, sections=["table1", "profiles"])
        markdown = report.to_markdown()
        assert "# (k, d)-choice reproduction report" in markdown
        assert "## Table 1" in markdown
        assert "```" in markdown

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError):
            generate_report(sections=["bogus"])

    def test_unknown_section_lookup_rejected(self):
        report = generate_report(seed=0, sections=["exact"])
        with pytest.raises(KeyError):
            report.section("missing")

    def test_reproducible_for_fixed_seed(self):
        a = generate_report(seed=3, sections=["table1"]).section("table1").body
        b = generate_report(seed=3, sections=["table1"]).section("table1").body
        assert a == b

    @pytest.mark.slow
    def test_full_report_runs_every_section(self):
        report = generate_report(seed=0)
        assert {s.key for s in report.sections} == set(REPORT_SECTIONS)
        markdown = report.to_markdown()
        for _, (title, _builder) in REPORT_SECTIONS.items():
            assert title in markdown
