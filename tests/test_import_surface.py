"""The top-level import surface: ``__all__`` is exact, the shims are gone."""

from __future__ import annotations

import pytest

import repro

#: The historical top-level shims removed after their deprecation cycle.
_REMOVED_SHIMS = (
    "run_always_go_left",
    "run_batch_random",
    "run_churn_kd_choice",
    "run_d_choice",
    "run_kd_choice",
    "run_kd_choice_vectorized",
    "run_one_plus_beta",
    "run_serialized_kd_choice",
    "run_single_choice",
    "run_stale_kd_choice",
    "run_threshold_adaptive",
    "run_two_phase_adaptive",
    "run_weighted_kd_choice",
)


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ names missing {name!r}"


def test_all_has_no_duplicates():
    assert len(repro.__all__) == len(set(repro.__all__))


@pytest.mark.parametrize("name", _REMOVED_SHIMS)
def test_shims_are_gone(name):
    assert not hasattr(repro, name), f"repro.{name} should have been removed"
    assert name not in repro.__all__


def test_core_still_exposes_the_reference_runners():
    from repro.core import run_kd_choice  # the undecorated implementation

    result = run_kd_choice(n_bins=128, k=1, d=2, seed=9)
    assert result.total_balls_check()


def test_spec_api_is_the_front_door():
    from repro.api import SchemeSpec, simulate

    result = simulate(
        SchemeSpec(scheme="kd_choice", params={"n_bins": 128, "k": 2, "d": 4}, seed=0)
    )
    assert result.total_balls_check()


def test_version_is_a_string():
    assert isinstance(repro.__version__, str) and repro.__version__
