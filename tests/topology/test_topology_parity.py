"""Flat-topology parity anchors and stepper state round-trips.

The acceptance contract for the topology subsystem: under a flat /
zero-cost topology the topology-aware schemes reproduce the paper's flat
schemes bit for bit, and the online steppers snapshot/restore exactly.
"""

from __future__ import annotations

import json

import pytest

from repro.api import SchemeSpec, simulate
from repro.core.kernels import (
    HierarchicalGoLeftStepper,
    LocalityTwoChoiceStepper,
)
from repro.topology import (
    Topology,
    run_hierarchical_go_left,
    run_locality_two_choice,
)

SEED = 1234
N_BINS = 256


class TestFlatParity:
    @pytest.mark.parametrize("bias", [0.0, 0.37, 1.0])
    def test_locality_flat_matches_two_choice_bit_for_bit(self, bias):
        """Under Topology.flat the zone remap is the identity for any bias."""
        flat = simulate(
            SchemeSpec(scheme="two_choice", params={"n_bins": N_BINS}, seed=SEED)
        )
        local = run_locality_two_choice(
            N_BINS, bias=bias, topology=Topology.flat(N_BINS), seed=SEED
        )
        assert (local.loads == flat.loads).all()
        assert local.extra["cross_probe_fraction"] == 0.0
        assert local.extra["probe_cost"] == 0.0

    def test_zero_bias_draw_stream_is_threshold_independent(self):
        """bias=0 never remaps a slot, so the probe draws (and hence the
        relation counters) are identical whatever the spill threshold."""
        runs = [
            run_locality_two_choice(
                N_BINS, bias=0.0, threshold=t, topology="quad_rack", seed=SEED
            )
            for t in (0, 3)
        ]
        for relation in ("rack", "zone", "cross"):
            key = f"{relation}_probes"
            assert runs[0].extra[key] == runs[1].extra[key]

    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_hierarchical_grid_matches_always_go_left(self, d):
        """A d-rack grid draws always_go_left's exact probe ranges."""
        flat = simulate(
            SchemeSpec(
                scheme="always_go_left", params={"n_bins": N_BINS, "d": d},
                seed=SEED,
            )
        )
        hier = run_hierarchical_go_left(N_BINS, d=d, seed=SEED)
        assert (hier.loads == flat.loads).all()
        explicit = run_hierarchical_go_left(
            N_BINS, topology=Topology.grid(N_BINS, zones=d), seed=SEED
        )
        assert (explicit.loads == flat.loads).all()

    @pytest.mark.parametrize(
        "scheme,params",
        [
            ("hierarchical_always_go_left", {"n_bins": 128, "topology": "wide"}),
            (
                "locality_two_choice",
                {
                    "n_bins": 128, "bias": 0.6, "threshold": 1,
                    "topology": "dual_zone",
                },
            ),
        ],
    )
    def test_engines_agree_through_the_api(self, scheme, params):
        loads = {}
        for engine in ("scalar", "vectorized"):
            result = simulate(
                SchemeSpec(scheme=scheme, params=params, seed=7, engine=engine)
            )
            loads[engine] = result.loads
            assert result.extra["topology"] == params["topology"]
        assert (loads["scalar"] == loads["vectorized"]).all()


class TestCostAccounting:
    def test_cost_knobs_never_touch_the_stream(self):
        cheap = run_locality_two_choice(
            64, bias=0.5, topology="dual_zone", seed=3
        )
        expensive = run_locality_two_choice(
            64, bias=0.5, seed=3,
            topology=Topology.grid(
                64, zones=2,
                probe_costs={"rack": 0.0, "zone": 5.0, "cross": 50.0},
                transfer_costs={"rack": 1.0, "zone": 10.0, "cross": 100.0},
            ),
        )
        assert (cheap.loads == expensive.loads).all()
        assert cheap.extra["cross_probes"] == expensive.extra["cross_probes"]
        assert expensive.extra["probe_cost"] > cheap.extra["probe_cost"]

    def test_full_bias_keeps_every_probe_in_zone(self):
        result = run_locality_two_choice(
            64, bias=1.0, topology="dual_zone", seed=5
        )
        assert result.extra["cross_probes"] == 0
        assert result.extra["cross_places"] == 0
        assert result.extra["cross_probe_fraction"] == 0.0

    def test_counters_tally_every_probe_and_place(self):
        result = run_locality_two_choice(
            96, bias=0.4, topology="quad_rack", seed=9, n_balls=500
        )
        probes = sum(
            result.extra[f"{r}_probes"] for r in ("rack", "zone", "cross")
        )
        places = sum(
            result.extra[f"{r}_places"] for r in ("rack", "zone", "cross")
        )
        assert probes == 500 * 2  # d probes per ball
        assert places == 500


class TestStepperState:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: HierarchicalGoLeftStepper(
                96, topology="quad_rack", n_balls=400, seed=11
            ),
            lambda: LocalityTwoChoiceStepper(
                96, bias=0.5, threshold=1, topology="dual_zone",
                n_balls=400, seed=11,
            ),
        ],
        ids=["hierarchical", "locality"],
    )
    def test_snapshot_mid_stream_resumes_identically(self, factory):
        reference = factory()
        for _ in range(150):
            reference.step()
        # Through JSON: the exact manifest/snapshot path.
        state = json.loads(json.dumps(reference.state_dict()))
        resumed = factory()
        resumed.load_state(state)
        while reference.balls_emitted < reference.planned_balls:
            assert reference.step() == resumed.step()
        assert (reference.loads == resumed.loads).all()
        assert reference.zone_counters == resumed.zone_counters
        assert reference.messages == resumed.messages

    def test_stepper_matches_scalar_reference(self):
        stepper = LocalityTwoChoiceStepper(
            128, bias=0.25, topology="dual_zone", n_balls=300, seed=2
        )
        while stepper.balls_emitted < stepper.planned_balls:
            stepper.step()
        reference = run_locality_two_choice(
            128, bias=0.25, topology="dual_zone", n_balls=300, seed=2
        )
        assert (stepper.loads == reference.loads).all()
        counters = stepper.zone_counters
        for name, value in counters.items():
            assert reference.extra[name] == value
