"""The Topology record: validation, constructors, homes, JSON contract."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.topology import (
    DEFAULT_PROBE_COSTS,
    DEFAULT_TRANSFER_COSTS,
    TOPOLOGY_LAYOUTS,
    Topology,
    TopologyError,
    as_topology,
    load_topology,
    save_topology,
    topology_registry_dump,
    zone_counter_extra,
)


class TestValidation:
    def test_empty_tree_rejected(self):
        with pytest.raises(TopologyError, match="at least one zone"):
            Topology(name="bad", zones=())

    def test_empty_zone_rejected(self):
        with pytest.raises(TopologyError, match="no racks"):
            Topology(name="bad", zones=((4,), ()))

    def test_empty_rack_rejected(self):
        with pytest.raises(TopologyError, match="at least one bin"):
            Topology(name="bad", zones=((4, 0),))

    def test_costs_must_cover_all_relations(self):
        with pytest.raises(TopologyError, match="relations"):
            Topology(
                name="bad", zones=((4,),), probe_costs={"rack": 0.0, "zone": 1.0}
            )

    def test_costs_must_be_finite_and_non_negative(self):
        for bad in (-1.0, float("nan"), float("inf")):
            with pytest.raises(TopologyError, match="finite non-negative"):
                Topology(
                    name="bad",
                    zones=((4,),),
                    probe_costs={"rack": 0.0, "zone": bad, "cross": 4.0},
                )

    def test_costs_must_be_monotone(self):
        with pytest.raises(TopologyError, match="monotone"):
            Topology(
                name="bad",
                zones=((4,),),
                transfer_costs={"rack": 2.0, "zone": 1.0, "cross": 4.0},
            )

    def test_grid_needs_enough_bins(self):
        with pytest.raises(TopologyError, match="n_bins"):
            Topology.grid(3, zones=2, racks_per_zone=2)
        with pytest.raises(TopologyError, match="at least one zone"):
            Topology.grid(8, zones=0)


class TestShape:
    def test_flat_is_one_zone_one_rack_zero_cost(self):
        topo = Topology.flat(64)
        assert topo.is_flat
        assert topo.zero_cost
        assert topo.n_zones == 1 and topo.n_racks == 1 and topo.n_bins == 64
        assert topo.bin_zone.tolist() == [0] * 64

    def test_grid_partitions_all_bins_contiguously(self):
        topo = Topology.grid(100, zones=3, racks_per_zone=2)
        assert topo.n_bins == 100
        assert topo.n_racks == 6
        # linspace boundaries: bins split as evenly as integer rounding allows
        assert topo.rack_starts.tolist() == [0, 16, 33, 50, 66, 83, 100]
        assert int(topo.rack_sizes.sum()) == 100
        # bin_zone is non-decreasing and covers every zone
        assert (np.diff(topo.bin_zone) >= 0).all()
        assert set(topo.bin_zone.tolist()) == {0, 1, 2}

    def test_ragged_trees_are_allowed(self):
        topo = Topology(name="ragged", zones=((3, 5), (8,)))
        assert topo.n_bins == 16
        assert topo.zone_sizes.tolist() == [8, 8]
        assert topo.bin_rack.tolist() == [0] * 3 + [1] * 5 + [2] * 8

    def test_home_assignment_round_robins_zones_then_racks(self):
        topo = Topology.grid(32, zones=2, racks_per_zone=2)
        # zones alternate with the ball index
        assert [topo.home_zone(i) for i in range(4)] == [0, 1, 0, 1]
        # within a zone, racks alternate every full zone cycle
        assert [topo.home_rack(i) for i in range(8)] == [0, 2, 1, 3, 0, 2, 1, 3]
        # vectorized homes agree with the scalar ones
        indices = np.arange(200, dtype=np.int64)
        assert topo.home_zones(indices).tolist() == [
            topo.home_zone(i) for i in range(200)
        ]
        assert topo.home_racks(indices).tolist() == [
            topo.home_rack(i) for i in range(200)
        ]


class TestJsonContract:
    def test_round_trip_preserves_equality(self):
        topo = Topology.grid(64, zones=2, racks_per_zone=2, name="rt")
        clone = Topology.from_dict(json.loads(json.dumps(topo.to_dict())))
        assert clone == topo

    def test_wrong_format_and_version_rejected(self):
        doc = Topology.flat(8).to_dict()
        with pytest.raises(TopologyError, match="format"):
            Topology.from_dict({**doc, "format": "something-else"})
        with pytest.raises(TopologyError, match="version"):
            Topology.from_dict({**doc, "version": 99})
        with pytest.raises(TopologyError, match="zones"):
            Topology.from_dict({k: v for k, v in doc.items() if k != "zones"})

    def test_save_load_round_trip(self, tmp_path):
        topo = Topology.grid(48, zones=2, racks_per_zone=3)
        path = tmp_path / "topo.json"
        save_topology(path, topo)
        assert load_topology(path) == topo
        # canonical JSON: re-saving is byte-identical
        first = path.read_bytes()
        save_topology(path, load_topology(path))
        assert path.read_bytes() == first

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(TopologyError, match="invalid JSON"):
            load_topology(path)
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(TopologyError, match="not a topology document"):
            load_topology(path)


class TestLayoutsAndResolution:
    def test_registry_names(self):
        assert sorted(TOPOLOGY_LAYOUTS) == [
            "dual_zone", "flat", "quad_rack", "wide",
        ]

    def test_layouts_bind_any_bin_count(self):
        for layout in TOPOLOGY_LAYOUTS.values():
            topo = layout.bind(64)
            assert topo.n_bins == 64
            assert topo.n_zones == layout.zones
            assert topo.n_racks == layout.zones * layout.racks_per_zone

    def test_as_topology_accepts_all_spellings(self):
        flat = as_topology(None, 32)
        assert flat.is_flat and flat.n_bins == 32
        named = as_topology("dual_zone", 32)
        assert named.n_zones == 2
        doc = as_topology(named.to_dict(), 32)
        assert doc == named
        assert as_topology(named, 32) is named

    def test_as_topology_rejects_mismatch_and_unknowns(self):
        with pytest.raises(TopologyError, match="unknown topology layout"):
            as_topology("nonexistent", 32)
        with pytest.raises(TopologyError, match="n_bins=16"):
            as_topology(Topology.flat(32), 16)
        with pytest.raises(TopologyError, match="must be None"):
            as_topology(42, 32)

    def test_registry_dump_is_deterministic_json(self):
        dump = topology_registry_dump()
        assert dump["format"] == "repro-topology-registry"
        assert dump["count"] == len(TOPOLOGY_LAYOUTS)
        assert json.dumps(dump, sort_keys=True) == json.dumps(
            topology_registry_dump(), sort_keys=True
        )


class TestZoneCounterExtra:
    def test_fractions_and_costs(self):
        topo = Topology.grid(
            16, zones=2,
            probe_costs=DEFAULT_PROBE_COSTS,
            transfer_costs=DEFAULT_TRANSFER_COSTS,
        )
        counters = {
            "rack_probes": 6, "zone_probes": 0, "cross_probes": 2,
            "rack_places": 3, "zone_places": 0, "cross_places": 1,
        }
        extra = zone_counter_extra(topo, counters)
        assert extra["cross_probe_fraction"] == pytest.approx(0.25)
        assert extra["cross_place_fraction"] == pytest.approx(0.25)
        # dual-zone grid has one rack per zone: cross probes cost 4 each
        assert extra["probe_cost"] == pytest.approx(2 * 4.0)
        assert extra["transfer_cost"] == pytest.approx(1 * 8.0)
        assert extra["topology"] == topo.name

    def test_zero_totals_do_not_divide(self):
        topo = Topology.flat(8)
        extra = zone_counter_extra(topo, {
            f"{r}_{kind}": 0
            for r in ("rack", "zone", "cross") for kind in ("probes", "places")
        })
        assert extra["cross_probe_fraction"] == 0.0
        assert extra["cross_place_fraction"] == 0.0
