"""Unit tests for the trial-execution backends (repro.api.executor)."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.api import (
    ProcessExecutor,
    SchemeSpec,
    SchemeSpecError,
    SerialExecutor,
    resolve_executor,
    resolve_n_jobs,
    run_trial,
    simulate_many,
    simulate_trials,
)

SPEC = SchemeSpec(scheme="kd_choice", params={"n_bins": 256, "k": 2, "d": 4}, seed=11)


class TestResolveNJobs:
    def test_none_and_one_mean_serial(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(1) == 1

    def test_minus_one_means_all_cpus(self):
        assert resolve_n_jobs(-1) == max(1, os.cpu_count() or 1)

    @pytest.mark.parametrize("bad", [0, -2, 2.5, "4", True])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(SchemeSpecError):
            resolve_n_jobs(bad)

    def test_resolve_executor_picks_backend(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor(1), SerialExecutor)
        assert isinstance(resolve_executor(2), ProcessExecutor)


class TestSpecPickling:
    def test_round_trip_preserves_spec(self):
        clone = pickle.loads(pickle.dumps(SPEC))
        assert clone == SPEC
        assert dict(clone.params) == dict(SPEC.params)

    def test_round_trip_params_stay_frozen(self):
        clone = pickle.loads(pickle.dumps(SPEC))
        with pytest.raises(TypeError):
            clone.params["k"] = 99  # MappingProxyType restored


class TestRunTrial:
    def test_returns_trial_outcome_with_default_metrics(self):
        trial = run_trial(SPEC, seed=3)
        assert trial.seed == 3
        assert set(trial.metrics) == {"max_load", "gap", "messages"}

    def test_custom_metrics(self):
        trial = run_trial(SPEC, seed=3, metrics={"ml": lambda r: float(r.max_load)})
        assert set(trial.metrics) == {"ml"}


class TestBackendEquivalence:
    def test_process_backend_matches_serial(self):
        seeds = [5, 6, 7, 8]
        serial = SerialExecutor().run(SPEC, seeds)
        parallel = ProcessExecutor(2).run(SPEC, seeds)
        assert [t.seed for t in parallel] == seeds
        assert [t.metrics for t in parallel] == [t.metrics for t in serial]

    def test_simulate_trials_parallel_identical_to_serial(self):
        serial = simulate_trials(SPEC, trials=4, n_jobs=1)
        parallel = simulate_trials(SPEC, trials=4, n_jobs=2)
        assert [t.seed for t in parallel.trials] == [t.seed for t in serial.trials]
        assert [t.metrics for t in parallel.trials] == [
            t.metrics for t in serial.trials
        ]

    def test_simulate_many_parallel_identical_to_serial(self):
        specs = [SPEC, SPEC.with_params(d=8), SPEC.with_params(k=1, d=2)]
        serial = simulate_many(specs, trials=3, seed=0)
        parallel = simulate_many(specs, trials=3, seed=0, n_jobs=2)
        for a, b in zip(serial, parallel):
            assert [t.seed for t in a.trials] == [t.seed for t in b.trials]
            assert [t.metrics for t in a.trials] == [t.metrics for t in b.trials]

    def test_empty_seed_list_short_circuits(self):
        assert ProcessExecutor(2).run(SPEC, []) == []


class TestProcessBackendErrors:
    def test_single_worker_rejected(self):
        with pytest.raises(SchemeSpecError, match="at least 2"):
            ProcessExecutor(1)

    def test_unpicklable_metric_reported_by_name(self):
        captured = 1.0
        metrics = {"bad": lambda r, c=iter(()): captured}  # generators don't pickle
        with pytest.raises(SchemeSpecError, match="'bad'"):
            ProcessExecutor(2).run(SPEC, [1, 2], metrics)

    def test_unpicklable_metric_via_simulate_trials(self):
        metrics = {"bad": lambda r, c=iter(()): 0.0}
        with pytest.raises(SchemeSpecError, match="n_jobs=1"):
            simulate_trials(SPEC, trials=2, n_jobs=2, metrics=metrics)


class TestSeedDerivationInvariance:
    def test_trial_seeds_do_not_depend_on_backend(self):
        # The seeds recorded in the outcome ARE the provenance; they must be
        # the same tree-derivation sequence regardless of n_jobs.
        from repro.simulation.rng import SeedTree

        expected = SeedTree(SPEC.seed).integer_seeds(4)
        outcome = simulate_trials(SPEC, trials=4, n_jobs=2)
        assert [t.seed for t in outcome.trials] == expected
