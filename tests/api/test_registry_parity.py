"""Registry/kernel parity: the lint that keeps one source of truth.

Every ball-stream scheme's engine surfaces are derived from its single
kernel registration in ``repro.core.kernels.table``; these tests run the
parity lint (``repro.api.lint.lint_registry``, exposed as ``repro schemes
--check``) against the real registry and poke its failure modes against
synthetic drift.
"""

import numpy as np
import pytest

from repro.api import get_scheme, lint_registry
from repro.api.lint import _kernel_surface_violations, _shim_purity_violations
from repro.core.kernels import EXEMPT_SCHEMES, KERNELS


class TestRealRegistryIsClean:
    def test_lint_registry_reports_no_violations(self):
        assert lint_registry() == []

    def test_every_non_exempt_scheme_is_kernel_backed(self):
        from repro.api import available_schemes

        for name in available_schemes():
            info = get_scheme(name)
            if name in EXEMPT_SCHEMES:
                assert info.kernel is None
            else:
                assert info.kernel == name
                assert name in KERNELS

    def test_registry_surfaces_are_the_kernel_objects(self):
        # Identity, not equality: a re-wrapped engine would still compare
        # equal behaviourally but is exactly the duplication the kernel
        # contract removed.
        for name, kernel in KERNELS.items():
            info = get_scheme(name)
            assert info.vectorized is kernel.vectorized
            assert info.online is kernel.stepper
            assert info.vectorized_guard is kernel.vectorized_guard
            assert info.vectorized_fastpath_guard is kernel.fastpath_guard

    def test_shim_modules_define_nothing(self):
        import repro.core.vectorized as vec_shim
        import repro.online.steppers as steppers_shim

        for module in (vec_shim, steppers_shim):
            owned = [
                symbol
                for symbol, value in vars(module).items()
                if not symbol.startswith("__")
                and getattr(value, "__module__", None) == module.__name__
            ]
            assert owned == [], f"{module.__name__} defines {owned}"

    def test_shim_exports_resolve_to_kernel_objects(self):
        from repro.core import vectorized as vec_shim
        from repro.core.kernels import table
        from repro.online import steppers as steppers_shim

        assert vec_shim.run_kd_choice_vectorized is table.run_kd_choice_vectorized
        assert steppers_shim.KDChoiceStepper is KERNELS["kd_choice"].stepper


class TestLintCatchesDrift:
    def test_rewrapped_engine_is_a_violation(self, monkeypatch):
        from repro.api.registry import REGISTRY

        info = REGISTRY.get("kd_choice")
        drifted = lambda **kwargs: info.vectorized(**kwargs)  # noqa: E731
        monkeypatch.setitem(
            REGISTRY._schemes,
            "kd_choice",
            _replace(info, vectorized=drifted),
        )
        problems = _kernel_surface_violations()
        assert any("kd_choice" in p and "vectorized" in p for p in problems)

    def test_non_exempt_kernel_free_scheme_is_a_violation(self, monkeypatch):
        from repro.api.registry import REGISTRY

        info = REGISTRY.get("kd_choice")
        monkeypatch.setitem(
            REGISTRY._schemes, "kd_choice", _replace(info, kernel=None)
        )
        problems = _kernel_surface_violations()
        assert any("kd_choice" in p and "kernel-backed" in p for p in problems)

    def test_symbol_defined_in_shim_is_a_violation(self, monkeypatch):
        import repro.core.vectorized as vec_shim

        def _rogue():  # pragma: no cover - never called
            return None

        _rogue.__module__ = "repro.core.vectorized"
        monkeypatch.setattr(vec_shim, "_rogue", _rogue, raising=False)
        problems = _shim_purity_violations()
        assert any("repro.core.vectorized" in p and "_rogue" in p for p in problems)


def _replace(info, **overrides):
    from dataclasses import replace

    return replace(info, **overrides)


class TestForcedVectorizedMatchesScalarForSequentialSchemes:
    """The capability the kernel contract unlocked, end to end."""

    @pytest.mark.parametrize(
        "scheme,params",
        [
            ("serialized_kd_choice", {"n_bins": 48, "n_balls": 96, "k": 2, "d": 4}),
            ("greedy_kd_choice", {"n_bins": 48, "n_balls": 96, "k": 3, "d": 5}),
            ("threshold_adaptive", {"n_bins": 48, "n_balls": 96}),
        ],
    )
    def test_derived_engine_matches_scalar(self, scheme, params):
        from repro.api import SchemeSpec, simulate

        scalar = simulate(
            SchemeSpec(scheme=scheme, params=params, seed=29, engine="scalar")
        )
        forced = simulate(
            SchemeSpec(scheme=scheme, params=params, seed=29, engine="vectorized")
        )
        assert np.array_equal(scalar.loads, forced.loads)
        assert scalar.messages == forced.messages
        assert scalar.rounds == forced.rounds
