"""Engine tests: scalar/vectorized equivalence and seed-tree fan-out."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import SchemeSpec, resolve_engine, simulate, simulate_many, simulate_trials
from repro.core.process import run_kd_choice
from repro.core.vectorized import run_kd_choice_vectorized
from repro.simulation.rng import SeedTree

#: Configurations spanning the engine's regimes: generic k < d, two-choice,
#: the degenerate k == d shortcut, a heavy load with a tail round, and a
#: tiny-n instance where almost every batch row conflicts.
EQUIVALENCE_CASES = [
    {"n_bins": 1024, "k": 4, "d": 8},
    {"n_bins": 1000, "k": 1, "d": 2},
    {"n_bins": 512, "k": 3, "d": 3},
    {"n_bins": 300, "k": 5, "d": 7, "n_balls": 1234},
    {"n_bins": 64, "k": 2, "d": 5, "n_balls": 640},
    {"n_bins": 4096, "k": 16, "d": 17},
]


class TestVectorizedEquivalence:
    @pytest.mark.parametrize("params", EQUIVALENCE_CASES)
    @pytest.mark.parametrize("seed", [0, 1, 42])
    def test_identical_load_vectors_for_fixed_seed(self, params, seed):
        scalar = run_kd_choice(seed=seed, **params)
        vectorized = run_kd_choice_vectorized(seed=seed, **params)
        assert np.array_equal(scalar.loads, vectorized.loads)
        assert scalar.messages == vectorized.messages
        assert scalar.rounds == vectorized.rounds
        assert scalar.n_balls == vectorized.n_balls

    @pytest.mark.parametrize("seed", [3, 17])
    def test_equivalence_through_the_spec_api(self, seed):
        params = {"n_bins": 768, "k": 2, "d": 6}
        results = {
            engine: simulate(
                SchemeSpec(scheme="kd_choice", params=params, seed=seed, engine=engine)
            )
            for engine in ("scalar", "vectorized")
        }
        assert np.array_equal(results["scalar"].loads, results["vectorized"].loads)

    def test_vectorized_rejects_non_strict_policy(self):
        with pytest.raises(ValueError, match="strict"):
            run_kd_choice_vectorized(n_bins=64, k=2, d=4, policy="greedy")

    def test_vectorized_validates_geometry(self):
        with pytest.raises(ValueError):
            run_kd_choice_vectorized(n_bins=8, k=4, d=2)

    def test_conservation_and_result_shape(self):
        result = run_kd_choice_vectorized(n_bins=256, k=3, d=7, n_balls=1000, seed=5)
        assert result.total_balls_check()
        assert result.extra["engine"] == "vectorized"
        assert result.extra["expected_messages"] == result.messages


class TestEngineResolution:
    def test_auto_prefers_vectorized_for_strict_kd_choice(self):
        spec = SchemeSpec(scheme="kd_choice", params={"n_bins": 64, "k": 1, "d": 2})
        assert resolve_engine(spec) == "vectorized"

    def test_auto_falls_back_for_greedy_policy(self):
        spec = SchemeSpec(
            scheme="kd_choice", params={"n_bins": 64, "k": 1, "d": 2}, policy="greedy"
        )
        assert resolve_engine(spec) == "scalar"

    def test_auto_is_scalar_for_schemes_without_fast_path(self):
        assert resolve_engine(SchemeSpec(scheme="serialized_kd_choice")) == "scalar"
        assert resolve_engine(SchemeSpec(scheme="greedy_kd_choice")) == "scalar"

    def test_auto_prefers_fast_cores_for_substrates(self):
        assert resolve_engine(SchemeSpec(scheme="cluster_scheduling")) == "vectorized"
        assert resolve_engine(SchemeSpec(scheme="storage_placement")) == "vectorized"
        # ...but failure/rebuild scenarios fall back to the reference system.
        spec = SchemeSpec(
            scheme="storage_placement", params={"fail_fraction": 0.1}
        )
        assert resolve_engine(spec) == "scalar"

    def test_auto_prefers_vectorized_for_covered_families(self):
        for scheme, params in [
            ("weighted_kd_choice", {"n_bins": 64, "k": 1, "d": 2}),
            ("stale_kd_choice", {"n_bins": 64, "k": 1, "d": 2}),
            ("churn_kd_choice", {"n_bins": 64, "k": 1, "d": 2, "rounds": 4}),
            ("single_choice", {"n_bins": 64}),
            ("two_choice", {"n_bins": 64}),
            ("threshold_adaptive", {"n_bins": 64}),
        ]:
            spec = SchemeSpec(scheme=scheme, params=params)
            assert resolve_engine(spec) == "vectorized", scheme

    def test_auto_falls_back_when_guard_rejects_params(self):
        spec = SchemeSpec(
            scheme="threshold_adaptive",
            params={"n_bins": 64, "threshold": lambda average: 2},
        )
        assert resolve_engine(spec) == "scalar"

    def test_explicit_scalar_request_honoured(self):
        spec = SchemeSpec(
            scheme="kd_choice", params={"n_bins": 64, "k": 1, "d": 2}, engine="scalar"
        )
        assert resolve_engine(spec) == "scalar"


class TestFullRegistryEngineDichotomy:
    """Acceptance: every registered scheme either runs under
    ``engine="vectorized"`` with scalar-identical results, or rejects the
    engine with a clear validation error at spec construction."""

    def test_every_scheme_is_vectorized_or_rejects(self):
        from repro.api import SchemeSpecError, available_schemes, get_scheme

        from test_api_registry import MINIMAL_PARAMS

        covered, rejected = [], []
        for name in available_schemes():
            params = MINIMAL_PARAMS[name]
            if get_scheme(name).vectorized is None:
                with pytest.raises(SchemeSpecError, match="no vectorized engine"):
                    SchemeSpec(scheme=name, params=params, engine="vectorized")
                rejected.append(name)
                continue
            results = {
                engine: simulate(
                    SchemeSpec(scheme=name, params=params, seed=13, engine=engine)
                )
                for engine in ("scalar", "vectorized")
            }
            assert np.array_equal(
                results["scalar"].loads, results["vectorized"].loads
            ), f"{name}: engines disagree"
            assert results["scalar"].messages == results["vectorized"].messages
            covered.append(name)
        # The kernel contract closes the dichotomy: even the inherently
        # sequential schemes (ball-at-a-time serialization, the greedy
        # water-filling policy) gain a derived batch engine that drives the
        # per-unit kernel, so a forced engine="vectorized" always runs.
        assert rejected == []
        assert len(covered) == len(available_schemes())
        assert len(covered) + len(rejected) == len(available_schemes())


class TestFanOut:
    def test_simulate_trials_runs_requested_count(self):
        spec = SchemeSpec(
            scheme="kd_choice", params={"n_bins": 128, "k": 2, "d": 4},
            seed=0, trials=4,
        )
        outcome = simulate_trials(spec)
        assert len(outcome.trials) == 4
        assert set(outcome.trials[0].metrics) == {"max_load", "gap", "messages"}

    def test_simulate_trials_matches_manual_seed_tree(self):
        spec = SchemeSpec(
            scheme="kd_choice", params={"n_bins": 128, "k": 2, "d": 4}, seed=9
        )
        outcome = simulate_trials(spec, trials=3)
        expected_seeds = SeedTree(9).integer_seeds(3)
        assert [trial.seed for trial in outcome.trials] == expected_seeds
        for trial in outcome.trials:
            reference = run_kd_choice(n_bins=128, k=2, d=4, seed=trial.seed)
            assert trial.metrics["max_load"] == float(reference.max_load)

    def test_simulate_many_shares_one_seed_tree(self):
        specs = [
            SchemeSpec(scheme="kd_choice", params={"n_bins": 128, "k": 2, "d": 4}, trials=2),
            SchemeSpec(scheme="single_choice", params={"n_bins": 128}, trials=3),
        ]
        outcomes = simulate_many(specs, seed=5)
        assert [len(o.trials) for o in outcomes] == [2, 3]
        all_seeds = [t.seed for o in outcomes for t in o.trials]
        assert all_seeds == SeedTree(5).integer_seeds(5)

    def test_simulate_many_is_reproducible(self):
        specs = [
            SchemeSpec(scheme="two_choice", params={"n_bins": 256}, trials=3),
        ]
        a = simulate_many(specs, seed=7)[0].metric_values("max_load")
        b = simulate_many(specs, seed=7)[0].metric_values("max_load")
        assert a == b

    def test_bound_rng_cannot_fan_out(self):
        # A shared generator would falsify the recorded per-trial seeds.
        from repro.api import SchemeSpecError

        spec = SchemeSpec(
            scheme="kd_choice",
            params={"n_bins": 64, "k": 1, "d": 2},
            rng=np.random.default_rng(0),
        )
        with pytest.raises(SchemeSpecError, match="rng"):
            simulate_trials(spec, trials=2)

    def test_trials_override_and_custom_metrics(self):
        spec = SchemeSpec(scheme="single_choice", params={"n_bins": 64}, trials=1)
        outcomes = simulate_many(
            [spec], trials=2, seed=0,
            metrics={"empty": lambda r: float((r.loads == 0).sum())},
        )
        assert len(outcomes[0].trials) == 2
        assert "empty" in outcomes[0].trials[0].metrics
