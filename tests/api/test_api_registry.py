"""Registry round-trip tests: every registered scheme runs through the API."""

from __future__ import annotations

import pytest

from repro.api import (
    REGISTRY,
    SchemeRegistry,
    SchemeSpec,
    available_schemes,
    describe_scheme,
    get_scheme,
    simulate,
)
from repro.core.types import AllocationResult

#: Minimal valid parameters for every registered scheme (tiny instances so
#: the full registry round-trip stays fast).
MINIMAL_PARAMS = {
    "kd_choice": {"n_bins": 128, "k": 2, "d": 4},
    "greedy_kd_choice": {"n_bins": 128, "k": 2, "d": 4},
    "serialized_kd_choice": {"n_bins": 64, "k": 2, "d": 4},
    "weighted_kd_choice": {"n_bins": 64, "k": 2, "d": 4},
    "stale_kd_choice": {"n_bins": 64, "k": 2, "d": 4, "stale_rounds": 4},
    "churn_kd_choice": {"n_bins": 32, "k": 2, "d": 4, "rounds": 64},
    "single_choice": {"n_bins": 128},
    "two_choice": {"n_bins": 128},
    "d_choice": {"n_bins": 128, "d": 3},
    "one_plus_beta": {"n_bins": 128, "beta": 0.5},
    "always_go_left": {"n_bins": 128, "d": 2},
    "batch_random": {"n_bins": 128, "k": 4},
    "threshold_adaptive": {"n_bins": 128},
    "two_phase_adaptive": {"n_bins": 128},
    "hierarchical_always_go_left": {"n_bins": 128, "topology": "quad_rack"},
    "locality_two_choice": {
        "n_bins": 128, "bias": 0.5, "threshold": 1, "topology": "dual_zone",
    },
    "cluster_scheduling": {"n_workers": 8, "n_jobs": 20},
    "storage_placement": {"n_servers": 16, "n_files": 50},
}


class TestCatalogue:
    def test_every_historical_entry_point_is_covered(self):
        # The twelve former run_* process entry points all map to schemes.
        names = set(available_schemes())
        assert {
            "kd_choice", "serialized_kd_choice", "single_choice", "d_choice",
            "one_plus_beta", "always_go_left", "batch_random",
            "threshold_adaptive", "two_phase_adaptive", "weighted_kd_choice",
            "stale_kd_choice", "churn_kd_choice",
        } <= names
        assert len(names) >= 14

    def test_minimal_params_cover_the_whole_registry(self):
        assert set(MINIMAL_PARAMS) == set(available_schemes())

    def test_aliases_resolve_to_canonical_scheme(self):
        assert get_scheme("kd").name == "kd_choice"
        assert get_scheme("greedy_d").name == "d_choice"

    def test_unknown_scheme_raises_with_candidates(self):
        with pytest.raises(KeyError, match="kd_choice"):
            get_scheme("definitely_not_a_scheme")

    def test_describe_scheme_reports_parameters_and_engines(self):
        description = describe_scheme("kd_choice")
        assert description["parameters"]["n_bins"] == "<required>"
        assert description["parameters"]["policy"] == "strict"
        assert description["engines"] == ["scalar", "vectorized", "compiled"]
        assert describe_scheme("single_choice")["engines"] == ["scalar", "vectorized"]
        assert describe_scheme("serialized_kd_choice")["engines"] == [
            "scalar", "vectorized",
        ]
        assert describe_scheme("two_choice")["engines"] == [
            "scalar", "vectorized", "compiled",
        ]
        assert describe_scheme("serialized_kd_choice")["kernel_derived"] is True
        assert describe_scheme("cluster_scheduling")["kernel_derived"] is False
        assert describe_scheme("cluster_scheduling")["engines"] == [
            "scalar", "vectorized",
        ]
        assert "mean_response" in describe_scheme("cluster_scheduling")["metrics"]
        assert describe_scheme("kd_choice")["metrics"] is None

    def test_duplicate_registration_rejected(self):
        registry = SchemeRegistry()

        @registry.register("thing")
        def _runner(n_bins):  # pragma: no cover - never executed
            return None

        with pytest.raises(ValueError, match="already registered"):
            registry.register("thing")(lambda n_bins: None)

    def test_registry_summary_defaults_to_docstring(self):
        registry = SchemeRegistry()

        @registry.register("documented")
        def _runner(n_bins):
            """One-line summary here."""

        assert registry.get("documented").summary == "One-line summary here."


class TestRoundTrip:
    @pytest.mark.parametrize("scheme", sorted(MINIMAL_PARAMS))
    def test_every_scheme_runs_and_conserves_balls(self, scheme):
        spec = SchemeSpec(scheme=scheme, params=MINIMAL_PARAMS[scheme], seed=11)
        result = simulate(spec)
        assert isinstance(result, AllocationResult)
        assert result.loads.shape[0] == result.n_bins
        assert int(result.loads.sum()) == result.n_balls
        assert result.max_load >= 1

    @pytest.mark.parametrize("scheme", sorted(MINIMAL_PARAMS))
    def test_every_scheme_is_reproducible_from_its_seed(self, scheme):
        spec = SchemeSpec(scheme=scheme, params=MINIMAL_PARAMS[scheme], seed=23)
        first = simulate(spec)
        second = simulate(spec)
        assert (first.loads == second.loads).all()

    def test_registry_is_the_global_singleton(self):
        assert get_scheme("kd_choice") is REGISTRY.get("kd_choice")
