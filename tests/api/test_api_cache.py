"""Unit tests for the on-disk result cache (repro.api.cache)."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.api import (
    REGISTRY,
    ResultStore,
    SchemeSpec,
    simulate_trials,
)
from repro.simulation.sweep import KDGridSweep, ParameterSweep

SPEC = SchemeSpec(scheme="kd_choice", params={"n_bins": 128, "k": 2, "d": 4}, seed=3)


@pytest.fixture
def counting_scheme(monkeypatch):
    """Patch the registered ``single_choice`` runner with a counting stub.

    Returns the call log; every scheme execution appends its seed, so a test
    can assert exactly how many runner invocations a (cached) run performed.
    """
    info = REGISTRY.get("single_choice")
    calls = []

    def counting_runner(n_bins, n_balls=None, seed=None, rng=None):
        calls.append(seed)
        return info.runner(n_bins, n_balls=n_balls, seed=seed, rng=rng)

    patched = dataclasses.replace(info, runner=counting_runner, vectorized=None)
    monkeypatch.setitem(REGISTRY._schemes, "single_choice", patched)
    return calls


class TestCacheKeying:
    def test_cache_key_ignores_seed_trials_label_engine(self):
        base = SPEC.cache_key()
        assert SPEC.with_seed(99).cache_key() == base
        assert dataclasses.replace(
            SPEC, trials=7, label="x", engine="scalar", params=dict(SPEC.params)
        ).cache_key() == base

    def test_cache_key_tracks_content(self):
        assert SPEC.with_params(d=8).cache_key() != SPEC.cache_key()
        assert (
            dataclasses.replace(
                SPEC, policy="greedy", params=dict(SPEC.params)
            ).cache_key()
            != SPEC.cache_key()
        )

    def test_cache_key_resolves_aliases(self):
        alias = SchemeSpec(scheme="kd", params=dict(SPEC.params))
        assert alias.cache_key() == SPEC.cache_key()

    def test_entry_key_separates_seed_engine_and_metrics(self):
        key = ResultStore.entry_key(SPEC, 1, "scalar", ["max_load"])
        assert ResultStore.entry_key(SPEC, 2, "scalar", ["max_load"]) != key
        assert ResultStore.entry_key(SPEC, 1, "vectorized", ["max_load"]) != key
        assert ResultStore.entry_key(SPEC, 1, "scalar", ["gap"]) != key
        # Metric-name order is canonicalized.
        assert ResultStore.entry_key(SPEC, 1, "scalar", ["gap", "max_load"]) == (
            ResultStore.entry_key(SPEC, 1, "scalar", ["max_load", "gap"])
        )


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        first = simulate_trials(SPEC, trials=3, cache=store)
        assert store.stats() == {"hits": 0, "misses": 3, "stores": 3, "pruned": 0}
        second = simulate_trials(SPEC, trials=3, cache=store)
        assert store.hits == 3 and store.misses == 3
        assert [t.seed for t in second.trials] == [t.seed for t in first.trials]
        assert [t.metrics for t in second.trials] == [t.metrics for t in first.trials]

    def test_cache_accepts_directory_path(self, tmp_path):
        first = simulate_trials(SPEC, trials=2, cache=tmp_path)
        second = simulate_trials(SPEC, trials=2, cache=str(tmp_path))
        assert [t.metrics for t in second.trials] == [t.metrics for t in first.trials]
        assert len(ResultStore(tmp_path)) == 2

    def test_cached_results_identical_to_uncached(self, tmp_path):
        uncached = simulate_trials(SPEC, trials=3)
        simulate_trials(SPEC, trials=3, cache=tmp_path)  # warm
        cached = simulate_trials(SPEC, trials=3, cache=tmp_path)  # all hits
        assert [t.metrics for t in cached.trials] == [
            t.metrics for t in uncached.trials
        ]

    def test_corrupt_entry_recomputed_and_repaired(self, tmp_path, counting_scheme):
        spec = SchemeSpec(scheme="single_choice", params={"n_bins": 64}, seed=0)
        store = ResultStore(tmp_path)
        simulate_trials(spec, trials=1, cache=store)
        assert len(counting_scheme) == 1
        (entry,) = list(store.cache_dir.glob("*/*.json"))
        entry.write_text("{not json", encoding="utf-8")
        outcome = simulate_trials(spec, trials=1, cache=store)
        assert len(counting_scheme) == 2  # recomputed
        assert outcome.trials[0].metrics["max_load"] >= 1
        # The entry was rewritten and is valid again.
        assert json.loads(entry.read_text(encoding="utf-8"))["seed"] == (
            outcome.trials[0].seed
        )

    def test_mismatched_metric_names_are_a_miss(self, tmp_path, counting_scheme):
        spec = SchemeSpec(scheme="single_choice", params={"n_bins": 64}, seed=0)
        simulate_trials(spec, trials=1, cache=tmp_path)
        store = ResultStore(tmp_path)

        def custom(result):
            return float(result.max_load)

        simulate_trials(spec, trials=1, cache=store, metrics={"custom": custom})
        assert store.misses == 1 and store.hits == 0
        assert len(counting_scheme) == 2


class TestWarmSweepSkipsRunners:
    def test_second_sweep_run_executes_zero_scheme_runners(
        self, tmp_path, counting_scheme
    ):
        sweep = ParameterSweep(
            grid={"n_bins": [32, 64], "n_balls": [64]}, scheme="single_choice"
        )
        sweep.run_table(trials=2, seed=0, cache=tmp_path)
        cold_calls = len(counting_scheme)
        assert cold_calls == 2 * 2  # 2 grid points x 2 trials

        store = ResultStore(tmp_path)
        table = sweep.run_table(trials=2, seed=0, cache=store)
        assert len(counting_scheme) == cold_calls  # zero new runner executions
        assert store.hits == cold_calls and store.misses == 0
        assert len(table) == 2

    def test_sweep_results_identical_with_and_without_cache(self, tmp_path):
        sweep = KDGridSweep(n=64, k_values=[1, 2], d_values=[2, 4])
        plain = sweep.run_table(trials=2, seed=5)
        sweep.run_table(trials=2, seed=5, cache=tmp_path)  # warm
        warm = sweep.run_table(trials=2, seed=5, cache=tmp_path)
        assert plain.rows == warm.rows

    def test_table1_reports_hits_on_second_run(self, tmp_path):
        from repro.experiments.table1 import run_table1

        store = ResultStore(tmp_path)
        first = run_table1(n=64, trials=2, k_values=[1], d_values=[2, 4], cache=store)
        assert store.misses == 4 and store.hits == 0
        second = run_table1(n=64, trials=2, k_values=[1], d_values=[2, 4], cache=store)
        assert store.hits == 4
        assert {kd: c.max_loads for kd, c in first.cells.items()} == {
            kd: c.max_loads for kd, c in second.cells.items()
        }


class TestPrune:
    def _fill(self, tmp_path, trials=6):
        store = ResultStore(tmp_path)
        simulate_trials(SPEC, trials=trials, cache=store)
        return store

    def test_prune_is_a_noop_without_limits(self, tmp_path):
        store = self._fill(tmp_path)
        assert store.prune() == 0
        assert len(store) == 6

    def test_prune_to_max_entries_keeps_the_newest(self, tmp_path):
        import os
        import time

        store = self._fill(tmp_path)
        entries = sorted(store.cache_dir.glob("*/*.json"))
        # Give the files distinct, known mtimes so the eviction order is
        # observable (oldest first).
        now = time.time()
        for index, path in enumerate(entries):
            os.utime(path, (now + index, now + index))
        evicted = store.prune(max_entries=2)
        assert evicted == 4
        survivors = set(store.cache_dir.glob("*/*.json"))
        assert survivors == set(entries[-2:])
        assert store.pruned == 4

    def test_prune_to_max_bytes(self, tmp_path):
        store = self._fill(tmp_path)
        sizes = [p.stat().st_size for p in store.cache_dir.glob("*/*.json")]
        budget = sum(sorted(sizes)[:3])  # room for about three entries
        store.prune(max_bytes=budget)
        remaining = list(store.cache_dir.glob("*/*.json"))
        assert 0 < len(remaining) <= 3
        assert sum(p.stat().st_size for p in remaining) <= budget

    def test_prune_preserves_hit_miss_counters_and_recomputes(self, tmp_path):
        store = self._fill(tmp_path, trials=3)
        assert store.misses == 3
        store.prune(max_entries=0)
        assert len(store) == 0
        assert store.misses == 3 and store.hits == 0  # untouched by eviction
        outcome = simulate_trials(SPEC, trials=3, cache=store)
        assert store.misses == 6  # evicted entries recompute as plain misses
        assert len(outcome.trials) == 3

    def test_prune_validates_limits(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError):
            store.prune(max_entries=-1)
        with pytest.raises(ValueError):
            store.prune(max_bytes=-1)

    def test_prune_results_unchanged_after_eviction(self, tmp_path):
        store = self._fill(tmp_path)
        before = simulate_trials(SPEC, trials=6, cache=store)
        store.prune(max_entries=2)
        after = simulate_trials(SPEC, trials=6, cache=store)
        assert [t.metrics for t in before.trials] == [
            t.metrics for t in after.trials
        ]
