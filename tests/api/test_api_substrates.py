"""Substrate engine parity: cluster/storage through the full spec engine.

Mirrors :mod:`tests.api.test_api_executor` for the application substrates:
parallel (``n_jobs=4``) trial fan-outs must be byte-for-byte identical to
serial, warm caches must answer without recomputation and reproduce the cold
results exactly, and the report objects must round-trip through pickle
(process pools) and JSON (the result cache / logs).
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.api import (
    SchemeSpec,
    resolve_metric_set,
    simulate,
    simulate_trials,
)
from repro.api.cache import ResultStore
from repro.api.schemes import CLUSTER_METRICS, STORAGE_METRICS
from repro.cluster.metrics import ClusterReport
from repro.storage.system import StorageReport

CLUSTER_SPEC = SchemeSpec(
    scheme="cluster_scheduling",
    params={"n_workers": 16, "n_jobs": 40, "tasks_per_job": 4},
    seed=19,
    trials=4,
)
STORAGE_SPEC = SchemeSpec(
    scheme="storage_placement",
    params={"n_servers": 32, "n_files": 120, "replicas": 3},
    seed=19,
    trials=4,
)
SUBSTRATE_SPECS = [CLUSTER_SPEC, STORAGE_SPEC]
SPEC_IDS = ["cluster", "storage"]


class TestMetricSets:
    def test_substrates_register_report_backed_metric_sets(self):
        assert resolve_metric_set(CLUSTER_SPEC) == CLUSTER_METRICS
        assert resolve_metric_set(STORAGE_SPEC) == STORAGE_METRICS

    def test_non_substrate_schemes_keep_the_library_default(self):
        spec = SchemeSpec(scheme="kd_choice", params={"n_bins": 64, "k": 1, "d": 2})
        assert set(resolve_metric_set(spec)) == {"max_load", "gap", "messages"}

    def test_explicit_metrics_override_the_registered_set(self):
        metrics = {"ml": lambda r: float(r.max_load)}
        assert resolve_metric_set(CLUSTER_SPEC, metrics) == metrics

    @pytest.mark.parametrize("spec", SUBSTRATE_SPECS, ids=SPEC_IDS)
    def test_metric_values_are_plain_finite_floats(self, spec):
        outcome = simulate_trials(spec, trials=1)
        for name, value in outcome.trials[0].metrics.items():
            assert type(value) is float, name
            assert np.isfinite(value), name


class TestSubstrateDeterminism:
    """Parallel vs serial byte-for-byte equality (the executor contract)."""

    @pytest.mark.parametrize("spec", SUBSTRATE_SPECS, ids=SPEC_IDS)
    def test_parallel_trials_identical_to_serial(self, spec):
        serial = simulate_trials(spec, n_jobs=1)
        parallel = simulate_trials(spec, n_jobs=4)
        assert [t.seed for t in parallel.trials] == [t.seed for t in serial.trials]
        assert [t.metrics for t in parallel.trials] == [
            t.metrics for t in serial.trials
        ]

    @pytest.mark.parametrize("spec", SUBSTRATE_SPECS, ids=SPEC_IDS)
    def test_engines_agree_through_simulate(self, spec):
        results = {
            engine: simulate(
                SchemeSpec(
                    scheme=spec.scheme, params=spec.params, seed=7, engine=engine
                )
            )
            for engine in ("scalar", "vectorized")
        }
        assert np.array_equal(results["scalar"].loads, results["vectorized"].loads)
        assert results["scalar"].messages == results["vectorized"].messages
        assert results["scalar"].extra["report"] == results["vectorized"].extra["report"]


class TestSubstrateCacheRoundTrip:
    """Regression for the substrate cache bug: rich report metrics must
    survive a --cache-dir run losslessly (no crash, no lossy entries)."""

    @pytest.mark.parametrize("spec", SUBSTRATE_SPECS, ids=SPEC_IDS)
    def test_warm_cache_reproduces_cold_serial_exactly(self, tmp_path, spec):
        store = ResultStore(tmp_path)
        cold = simulate_trials(spec, cache=store)
        assert store.hits == 0 and store.misses == spec.trials
        warm_store = ResultStore(tmp_path)
        warm = simulate_trials(spec, cache=warm_store)
        assert warm_store.hits == spec.trials and warm_store.misses == 0
        assert [t.seed for t in warm.trials] == [t.seed for t in cold.trials]
        assert [t.metrics for t in warm.trials] == [t.metrics for t in cold.trials]

    @pytest.mark.parametrize("spec", SUBSTRATE_SPECS, ids=SPEC_IDS)
    def test_cache_entries_are_valid_full_precision_json(self, tmp_path, spec):
        store = ResultStore(tmp_path)
        outcome = simulate_trials(spec, cache=store)
        entries = sorted(tmp_path.glob("*/*.json"))
        assert len(entries) == spec.trials
        stored_metrics = []
        for path in entries:
            entry = json.loads(path.read_text(encoding="utf-8"))
            assert all(
                isinstance(v, (int, float)) for v in entry["metrics"].values()
            )
            stored_metrics.append(entry["metrics"])
        computed = {
            (t.seed, name): value
            for t in outcome.trials
            for name, value in t.metrics.items()
        }
        flattened = {
            (entry["seed"], name): value
            for entry, metrics in zip(
                (json.loads(p.read_text()) for p in entries), stored_metrics
            )
            for name, value in metrics.items()
        }
        assert flattened == computed

    def test_cached_and_fresh_runs_agree_across_engines(self, tmp_path):
        # auto resolves to the fast core; a cache written by it must answer a
        # later auto run even though the scalar reference would compute the
        # same values.
        spec = CLUSTER_SPEC
        store = ResultStore(tmp_path)
        fast = simulate_trials(spec, cache=store)
        scalar_spec = SchemeSpec(
            scheme=spec.scheme, params=spec.params, seed=spec.seed,
            trials=spec.trials, engine="scalar",
        )
        scalar = simulate_trials(scalar_spec)
        assert [t.metrics for t in fast.trials] == [t.metrics for t in scalar.trials]


class TestReportSerialization:
    """The stable to_dict()/from_dict() contract of both report types."""

    def _reports(self):
        cluster = simulate(CLUSTER_SPEC.with_seed(3)).extra["report"]
        storage = simulate(STORAGE_SPEC.with_seed(3)).extra["report"]
        return [cluster, storage]

    def test_json_round_trip_is_lossless(self):
        for report in self._reports():
            payload = json.loads(json.dumps(report.to_dict()))
            assert type(report).from_dict(payload) == report

    def test_pickle_round_trip_is_lossless(self):
        for report in self._reports():
            assert pickle.loads(pickle.dumps(report)) == report

    def test_from_dict_rejects_unknown_and_missing_fields(self):
        report = self._reports()[0]
        payload = report.to_dict()
        with pytest.raises(ValueError, match="unknown"):
            ClusterReport.from_dict({**payload, "bogus": 1})
        payload.pop("mean_response")
        with pytest.raises(ValueError, match="missing"):
            ClusterReport.from_dict(payload)

    def test_storage_from_dict_symmetry(self):
        report = self._reports()[1]
        assert StorageReport.from_dict(report.to_dict()) == report
