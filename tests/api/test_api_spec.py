"""SchemeSpec construction, validation and functional-update tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import SchemeSpec, SchemeSpecError, simulate


class TestValidation:
    def test_scheme_must_be_nonempty_string(self):
        with pytest.raises(SchemeSpecError):
            SchemeSpec(scheme="")
        with pytest.raises(SchemeSpecError):
            SchemeSpec(scheme=42)  # type: ignore[arg-type]

    def test_params_must_be_a_mapping_with_string_keys(self):
        with pytest.raises(SchemeSpecError):
            SchemeSpec(scheme="kd_choice", params=[("n_bins", 8)])  # type: ignore[arg-type]
        with pytest.raises(SchemeSpecError):
            SchemeSpec(scheme="kd_choice", params={1: 8})  # type: ignore[dict-item]

    def test_trials_must_be_positive_integer(self):
        with pytest.raises(SchemeSpecError):
            SchemeSpec(scheme="kd_choice", trials=0)
        with pytest.raises(SchemeSpecError):
            SchemeSpec(scheme="kd_choice", trials=1.5)  # type: ignore[arg-type]

    def test_engine_must_be_known(self):
        with pytest.raises(SchemeSpecError, match="engine"):
            SchemeSpec(scheme="kd_choice", engine="warp-drive")

    def test_rng_must_be_generator(self):
        with pytest.raises(SchemeSpecError, match="rng"):
            SchemeSpec(scheme="kd_choice", rng="not-an-rng")  # type: ignore[arg-type]

    def test_params_are_frozen_after_construction(self):
        spec = SchemeSpec(scheme="kd_choice", params={"n_bins": 64, "k": 1, "d": 2})
        with pytest.raises(TypeError):
            spec.params["n_bins"] = 128  # type: ignore[index]


class TestExecutionErrors:
    def test_unknown_parameter_rejected_with_accepted_list(self):
        spec = SchemeSpec(
            scheme="kd_choice", params={"n_bins": 64, "k": 1, "d": 2, "bogus": 1}
        )
        with pytest.raises(SchemeSpecError, match="bogus"):
            simulate(spec)

    def test_missing_required_parameter_reported(self):
        with pytest.raises(SchemeSpecError, match="n_bins"):
            simulate(SchemeSpec(scheme="kd_choice", params={"k": 1, "d": 2}))

    def test_seed_must_go_through_the_spec_field(self):
        spec = SchemeSpec(scheme="single_choice", params={"n_bins": 64, "seed": 3})
        with pytest.raises(SchemeSpecError, match="seed"):
            simulate(spec)

    def test_policy_on_policyless_scheme_rejected(self):
        spec = SchemeSpec(
            scheme="single_choice", params={"n_bins": 64}, policy="strict"
        )
        with pytest.raises(SchemeSpecError, match="policy"):
            simulate(spec)

    def test_sequential_schemes_accept_forced_vectorized_but_not_auto(self):
        # The kernel-derived batch engines run the sequential schemes too
        # (by driving the per-unit kernel), so a forced engine="vectorized"
        # is honoured; the fast-path guard keeps engine="auto" on the
        # scalar reference because there is no speedup on offer.
        from repro.api.engine import resolve_engine

        for scheme in ("serialized_kd_choice", "greedy_kd_choice"):
            forced = SchemeSpec(
                scheme=scheme,
                params={"n_bins": 64, "k": 2, "d": 4},
                engine="vectorized",
            )
            assert resolve_engine(forced) == "vectorized"
            auto = SchemeSpec(scheme=scheme, params={"n_bins": 64, "k": 2, "d": 4})
            assert resolve_engine(auto) == "scalar"

    def test_vectorized_substrate_guard_rejects_failure_scenarios(self):
        # The storage substrate's fast core only covers all-alive clusters;
        # the guard fires at construction for failure/rebuild scenarios.
        with pytest.raises(SchemeSpecError, match="fail_fraction"):
            SchemeSpec(
                scheme="storage_placement",
                params={"n_servers": 16, "n_files": 32, "fail_fraction": 0.1},
                engine="vectorized",
            )

    def test_vectorized_engine_rejects_greedy_policy_at_construction(self):
        with pytest.raises(SchemeSpecError, match="strict"):
            SchemeSpec(
                scheme="kd_choice",
                params={"n_bins": 64, "k": 2, "d": 4},
                policy="greedy",
                engine="vectorized",
            )

    def test_callable_threshold_is_fastpath_guarded_not_rejected(self):
        # Callable thresholds used to be a hard vectorized rejection; the
        # kernel-derived engine now drives the per-ball stepper for them,
        # so forcing engine="vectorized" works and only auto-selection
        # prefers the scalar reference.
        from repro.api.engine import resolve_engine

        forced = SchemeSpec(
            scheme="threshold_adaptive",
            params={"n_bins": 64, "threshold": lambda average: 2},
            engine="vectorized",
        )
        assert resolve_engine(forced) == "vectorized"
        auto = SchemeSpec(
            scheme="threshold_adaptive",
            params={"n_bins": 64, "threshold": lambda average: 2},
        )
        assert resolve_engine(auto) == "scalar"

    def test_unknown_scheme_with_vectorized_engine_defers_to_execution(self):
        # An unregistered name cannot be validated at construction; the
        # execution path still reports the candidate list.
        spec = SchemeSpec(scheme="not_a_scheme", engine="vectorized")
        with pytest.raises(KeyError, match="available schemes"):
            simulate(spec)


class TestSpecUtilities:
    def test_with_seed_returns_new_spec(self):
        spec = SchemeSpec(scheme="kd_choice", params={"n_bins": 64, "k": 1, "d": 2})
        reseeded = spec.with_seed(9)
        assert reseeded.seed == 9 and spec.seed is None
        assert dict(reseeded.params) == dict(spec.params)

    def test_with_params_merges(self):
        spec = SchemeSpec(scheme="kd_choice", params={"n_bins": 64, "k": 1, "d": 2})
        wider = spec.with_params(d=8)
        assert wider.params["d"] == 8 and spec.params["d"] == 2

    def test_display_label_autogenerates(self):
        spec = SchemeSpec(scheme="single_choice", params={"n_bins": 64})
        assert spec.display_label == "single_choice(n_bins=64)"
        assert SchemeSpec(scheme="x", label="mine").display_label == "mine"

    def test_to_dict_round_trips_plain_data(self):
        spec = SchemeSpec(
            scheme="kd_choice", params={"n_bins": 64, "k": 1, "d": 2},
            policy="strict", seed=5, trials=3, engine="scalar", label="L",
        )
        assert spec.to_dict() == {
            "scheme": "kd_choice",
            "params": {"n_bins": 64, "k": 1, "d": 2},
            "policy": "strict",
            "seed": 5,
            "trials": 3,
            "engine": "scalar",
            "label": "L",
        }

    def test_explicit_rng_is_used(self):
        rng = np.random.default_rng(0)
        spec = SchemeSpec(
            scheme="kd_choice", params={"n_bins": 64, "k": 1, "d": 2}, rng=rng
        )
        result = simulate(spec)
        assert result.total_balls_check()

    def test_specs_are_hashable_cache_keys(self):
        a = SchemeSpec(scheme="kd_choice", params={"n_bins": 64, "k": 1, "d": 2})
        b = SchemeSpec(scheme="kd_choice", params={"k": 1, "d": 2, "n_bins": 64})
        c = a.with_params(d=4)
        assert hash(a) == hash(b) and a == b
        assert len({a, b, c}) == 2

    def test_unhashable_param_values_still_hash(self):
        spec = SchemeSpec(
            scheme="weighted_kd_choice",
            params={"n_bins": 64, "k": 1, "d": 2, "weights": [1.0, 2.0]},
        )
        assert isinstance(hash(spec), int)
