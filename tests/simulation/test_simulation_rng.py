"""Unit tests for the deterministic randomness management."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.rng import SeedTree, derive_seeds, make_generator, spawn_generators


class TestMakeGenerator:
    def test_returns_generator(self):
        assert isinstance(make_generator(0), np.random.Generator)

    def test_passes_through_existing_generator(self):
        rng = np.random.default_rng(1)
        assert make_generator(rng) is rng

    def test_same_seed_same_stream(self):
        a = make_generator(5).random(4)
        b = make_generator(5).random(4)
        assert np.array_equal(a, b)

    def test_none_seed_allowed(self):
        assert isinstance(make_generator(None), np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_streams_are_independent(self):
        g1, g2 = spawn_generators(0, 2)
        assert not np.array_equal(g1.random(8), g2.random(8))

    def test_reproducible(self):
        a = [g.random() for g in spawn_generators(42, 3)]
        b = [g.random() for g in spawn_generators(42, 3)]
        assert a == b

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestDeriveSeeds:
    def test_count_and_type(self):
        seeds = derive_seeds(7, 4)
        assert len(seeds) == 4
        assert all(isinstance(s, int) for s in seeds)

    def test_reproducible(self):
        assert derive_seeds(7, 4) == derive_seeds(7, 4)

    def test_distinct(self):
        seeds = derive_seeds(7, 16)
        assert len(set(seeds)) == 16

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            derive_seeds(0, -2)


class TestSeedTree:
    def test_children_spawned_counter(self):
        tree = SeedTree(0)
        tree.generator()
        tree.generators(3)
        assert tree.children_spawned == 4

    def test_generators_are_distinct_streams(self):
        tree = SeedTree(0)
        g1, g2 = tree.generators(2)
        assert not np.array_equal(g1.random(8), g2.random(8))

    def test_reproducible_across_trees(self):
        a = SeedTree(3).generator().random(4)
        b = SeedTree(3).generator().random(4)
        assert np.array_equal(a, b)

    def test_integer_seeds_reproducible(self):
        assert SeedTree(9).integer_seeds(5) == SeedTree(9).integer_seeds(5)

    def test_integer_seeds_rejects_non_positive_counts(self):
        # A fan-out asking for zero trials must fail loudly, not return []
        # and silently produce an empty experiment outcome.
        with pytest.raises(ValueError, match="positive count"):
            SeedTree(9).integer_seeds(0)
        with pytest.raises(ValueError, match="positive count"):
            SeedTree(9).integer_seeds(-3)

    def test_root_entropy_exposed(self):
        assert SeedTree(123).root_entropy == (123,)

    def test_stream_iterator(self):
        tree = SeedTree(1)
        stream = tree.stream()
        first = next(stream)
        second = next(stream)
        assert isinstance(first, np.random.Generator)
        assert not np.array_equal(first.random(4), second.random(4))

    def test_negative_generator_count_rejected(self):
        with pytest.raises(ValueError):
            SeedTree(0).generators(-1)
