"""Unit tests for the ASCII plotting helpers."""

from __future__ import annotations

import pytest

from repro.simulation.plotting import horizontal_bar_chart, profile_chart, sparkline


class TestHorizontalBarChart:
    def test_contains_labels_and_values(self):
        chart = horizontal_bar_chart({"single": 7.0, "two-choice": 3.0})
        assert "single" in chart
        assert "two-choice" in chart
        assert "7.00" in chart
        assert "3.00" in chart

    def test_longest_bar_belongs_to_largest_value(self):
        chart = horizontal_bar_chart({"a": 10.0, "b": 1.0}, width=20)
        line_a, line_b = chart.splitlines()
        assert line_a.count("█") > line_b.count("█")

    def test_zero_values_render_empty_bars(self):
        chart = horizontal_bar_chart({"a": 0.0, "b": 2.0})
        line_a = chart.splitlines()[0]
        assert "█" not in line_a

    def test_empty_mapping(self):
        assert horizontal_bar_chart({}) == ""

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            horizontal_bar_chart({"a": 1.0}, width=0)

    def test_custom_format(self):
        chart = horizontal_bar_chart({"a": 1.23456}, value_format="{:.4f}")
        assert "1.2346" in chart


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_extremes_use_extreme_glyphs(self):
        line = sparkline([0, 10])
        assert line[0] == "▁"
        assert line[1] == "█"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_series_is_nondecreasing_in_glyph_index(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        levels = "▁▂▃▄▅▆▇█"
        indices = [levels.index(c) for c in line]
        assert indices == sorted(indices)


class TestProfileChart:
    def test_contains_every_rank_and_load(self):
        chart = profile_chart([(1, 5), (10, 2), (100, 1)])
        assert "rank        1" in chart
        assert "load=5" in chart
        assert "load=1" in chart

    def test_empty(self):
        assert profile_chart([]) == ""

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            profile_chart([(1, 2)], width=0)

    def test_header_mentions_max_values(self):
        chart = profile_chart([(1, 9), (50, 3)])
        assert "max 9" in chart
        assert "50" in chart
