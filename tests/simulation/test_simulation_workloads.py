"""Unit tests for the workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.workloads import (
    BallBatchStream,
    FileSpec,
    JobSpec,
    file_population,
    poisson_job_trace,
    zipf_weights,
)


class TestBallBatchStream:
    def test_round_count_exact(self):
        assert BallBatchStream(n_balls=100, k=4).rounds == 25

    def test_round_count_with_tail(self):
        assert BallBatchStream(n_balls=10, k=4).rounds == 3

    def test_batch_sizes_sum_to_total(self):
        stream = BallBatchStream(n_balls=10, k=4)
        sizes = list(stream.batch_sizes())
        assert sizes == [4, 4, 2]
        assert sum(sizes) == 10

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BallBatchStream(n_balls=-1, k=2)
        with pytest.raises(ValueError):
            BallBatchStream(n_balls=4, k=0)


class TestJobTrace:
    def test_job_count_and_tasks(self):
        trace = poisson_job_trace(20, arrival_rate=2.0, tasks_per_job=4, seed=0)
        assert len(trace) == 20
        assert trace.total_tasks == 80

    def test_arrival_times_increasing(self):
        trace = poisson_job_trace(50, arrival_rate=5.0, tasks_per_job=2, seed=1)
        arrivals = [job.arrival_time for job in trace]
        assert all(a <= b for a, b in zip(arrivals, arrivals[1:]))

    def test_mean_interarrival_close_to_rate(self):
        trace = poisson_job_trace(4000, arrival_rate=4.0, tasks_per_job=1, seed=2)
        arrivals = np.array([job.arrival_time for job in trace])
        inter = np.diff(arrivals)
        assert np.mean(inter) == pytest.approx(0.25, rel=0.15)

    def test_exponential_durations_have_requested_mean(self):
        trace = poisson_job_trace(
            2000, arrival_rate=1.0, tasks_per_job=2, mean_task_duration=3.0, seed=3
        )
        durations = [d for job in trace for d in job.task_durations]
        assert np.mean(durations) == pytest.approx(3.0, rel=0.1)

    def test_constant_durations(self):
        trace = poisson_job_trace(
            10, arrival_rate=1.0, tasks_per_job=3,
            mean_task_duration=2.0, duration_distribution="constant", seed=4,
        )
        assert all(d == 2.0 for job in trace for d in job.task_durations)

    def test_uniform_durations_in_range(self):
        trace = poisson_job_trace(
            100, arrival_rate=1.0, tasks_per_job=2,
            mean_task_duration=2.0, duration_distribution="uniform", seed=5,
        )
        durations = [d for job in trace for d in job.task_durations]
        assert min(durations) >= 1.0
        assert max(durations) <= 3.0

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            poisson_job_trace(5, 1.0, 2, duration_distribution="weibull")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            poisson_job_trace(-1, 1.0, 2)
        with pytest.raises(ValueError):
            poisson_job_trace(5, 0.0, 2)
        with pytest.raises(ValueError):
            poisson_job_trace(5, 1.0, 0)
        with pytest.raises(ValueError):
            poisson_job_trace(5, 1.0, 2, mean_task_duration=0)

    def test_job_spec_helpers(self):
        job = JobSpec(job_id=0, arrival_time=1.0, task_durations=(1.0, 2.0, 3.0))
        assert job.tasks_per_job == 3
        assert job.total_work == pytest.approx(6.0)

    def test_reproducible(self):
        a = poisson_job_trace(10, 1.0, 2, seed=9)
        b = poisson_job_trace(10, 1.0, 2, seed=9)
        assert [j.arrival_time for j in a] == [j.arrival_time for j in b]


class TestZipfWeights:
    def test_normalized(self):
        weights = zipf_weights(100, 1.0)
        assert weights.sum() == pytest.approx(1.0)

    def test_decreasing(self):
        weights = zipf_weights(50, 1.2)
        assert all(weights[i] >= weights[i + 1] for i in range(len(weights) - 1))

    def test_zero_exponent_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert np.allclose(weights, 0.1)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(5, -1.0)


class TestFilePopulation:
    def test_count_and_replicas(self):
        files = file_population(50, replicas=3, seed=0)
        assert len(files) == 50
        assert all(f.replicas == 3 for f in files)

    def test_constant_sizes(self):
        files = file_population(10, replicas=2, mean_size=4.0, seed=0)
        assert all(f.size == pytest.approx(4.0) for f in files)

    def test_exponential_sizes_have_mean(self):
        files = file_population(
            5000, replicas=2, size_distribution="exponential", mean_size=2.0, seed=1
        )
        assert np.mean([f.size for f in files]) == pytest.approx(2.0, rel=0.1)

    def test_lognormal_sizes_positive(self):
        files = file_population(
            100, replicas=2, size_distribution="lognormal", mean_size=1.0, seed=2
        )
        assert all(f.size > 0 for f in files)

    def test_popularity_normalized(self):
        files = file_population(100, replicas=2, popularity_exponent=1.0, seed=3)
        assert sum(f.popularity for f in files) == pytest.approx(1.0)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            file_population(5, replicas=2, size_distribution="pareto")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            file_population(-1, replicas=2)
        with pytest.raises(ValueError):
            file_population(5, replicas=0)
