"""Unit tests for the workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.workloads import (
    BallBatchStream,
    FileSpec,
    JobSpec,
    file_population,
    file_sizes,
    job_trace_arrays,
    poisson_job_trace,
    worker_speeds,
    zipf_weights,
)


class TestBallBatchStream:
    def test_round_count_exact(self):
        assert BallBatchStream(n_balls=100, k=4).rounds == 25

    def test_round_count_with_tail(self):
        assert BallBatchStream(n_balls=10, k=4).rounds == 3

    def test_batch_sizes_sum_to_total(self):
        stream = BallBatchStream(n_balls=10, k=4)
        sizes = list(stream.batch_sizes())
        assert sizes == [4, 4, 2]
        assert sum(sizes) == 10

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BallBatchStream(n_balls=-1, k=2)
        with pytest.raises(ValueError):
            BallBatchStream(n_balls=4, k=0)


class TestJobTrace:
    def test_job_count_and_tasks(self):
        trace = poisson_job_trace(20, arrival_rate=2.0, tasks_per_job=4, seed=0)
        assert len(trace) == 20
        assert trace.total_tasks == 80

    def test_arrival_times_increasing(self):
        trace = poisson_job_trace(50, arrival_rate=5.0, tasks_per_job=2, seed=1)
        arrivals = [job.arrival_time for job in trace]
        assert all(a <= b for a, b in zip(arrivals, arrivals[1:]))

    def test_mean_interarrival_close_to_rate(self):
        trace = poisson_job_trace(4000, arrival_rate=4.0, tasks_per_job=1, seed=2)
        arrivals = np.array([job.arrival_time for job in trace])
        inter = np.diff(arrivals)
        assert np.mean(inter) == pytest.approx(0.25, rel=0.15)

    def test_exponential_durations_have_requested_mean(self):
        trace = poisson_job_trace(
            2000, arrival_rate=1.0, tasks_per_job=2, mean_task_duration=3.0, seed=3
        )
        durations = [d for job in trace for d in job.task_durations]
        assert np.mean(durations) == pytest.approx(3.0, rel=0.1)

    def test_constant_durations(self):
        trace = poisson_job_trace(
            10, arrival_rate=1.0, tasks_per_job=3,
            mean_task_duration=2.0, duration_distribution="constant", seed=4,
        )
        assert all(d == 2.0 for job in trace for d in job.task_durations)

    def test_uniform_durations_in_range(self):
        trace = poisson_job_trace(
            100, arrival_rate=1.0, tasks_per_job=2,
            mean_task_duration=2.0, duration_distribution="uniform", seed=5,
        )
        durations = [d for job in trace for d in job.task_durations]
        assert min(durations) >= 1.0
        assert max(durations) <= 3.0

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            poisson_job_trace(5, 1.0, 2, duration_distribution="weibull")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            poisson_job_trace(-1, 1.0, 2)
        with pytest.raises(ValueError):
            poisson_job_trace(5, 0.0, 2)
        with pytest.raises(ValueError):
            poisson_job_trace(5, 1.0, 0)
        with pytest.raises(ValueError):
            poisson_job_trace(5, 1.0, 2, mean_task_duration=0)

    def test_job_spec_helpers(self):
        job = JobSpec(job_id=0, arrival_time=1.0, task_durations=(1.0, 2.0, 3.0))
        assert job.tasks_per_job == 3
        assert job.total_work == pytest.approx(6.0)

    def test_job_spec_rejects_empty_and_negative(self):
        with pytest.raises(ValueError, match="at least one task"):
            JobSpec(job_id=0, arrival_time=0.0, task_durations=())
        with pytest.raises(ValueError, match="negative arrival"):
            JobSpec(job_id=0, arrival_time=-1.0, task_durations=(1.0,))

    def test_reproducible(self):
        a = poisson_job_trace(10, 1.0, 2, seed=9)
        b = poisson_job_trace(10, 1.0, 2, seed=9)
        assert [j.arrival_time for j in a] == [j.arrival_time for j in b]


class TestScenarioLibrary:
    """Heavy-tailed service times, bursty arrivals, worker heterogeneity."""

    @pytest.mark.parametrize("distribution", ["pareto", "lognormal"])
    def test_heavy_tailed_durations_positive_with_requested_mean(self, distribution):
        trace = job_trace_arrays(
            4000, arrival_rate=1.0, tasks_per_job=2, mean_task_duration=2.0,
            duration_distribution=distribution, seed=0,
        )
        assert float(trace.durations.min()) > 0.0
        assert float(trace.durations.mean()) == pytest.approx(2.0, rel=0.25)

    def test_pareto_tail_heavier_than_exponential(self):
        pareto = job_trace_arrays(
            5000, 1.0, 1, duration_distribution="pareto", duration_shape=1.5, seed=1
        )
        exponential = job_trace_arrays(5000, 1.0, 1, seed=1)
        assert float(pareto.durations.max()) > float(exponential.durations.max())

    def test_pareto_shape_must_have_finite_mean(self):
        with pytest.raises(ValueError, match="shape"):
            job_trace_arrays(5, 1.0, 1, duration_distribution="pareto",
                             duration_shape=1.0)

    def test_mmpp_arrivals_sorted_and_burstier_than_poisson(self):
        mmpp = job_trace_arrays(
            4000, arrival_rate=4.0, tasks_per_job=1,
            arrival_process="mmpp", burstiness=6.0, seed=2,
        )
        poisson = job_trace_arrays(4000, arrival_rate=4.0, tasks_per_job=1, seed=2)
        assert np.all(np.diff(mmpp.arrival_times) >= 0)
        # Burstiness shows up as a larger coefficient of variation of the
        # inter-arrival times than the memoryless baseline's (~1).
        def cv(times):
            inter = np.diff(times)
            return float(inter.std() / inter.mean())
        assert cv(mmpp.arrival_times) > cv(poisson.arrival_times)

    def test_mmpp_preserves_the_requested_mean_rate(self):
        # Regression: the burst/quiet rates are rescaled so the long-run
        # mean arrival rate stays at arrival_rate (harmonic-mean correction).
        trace = job_trace_arrays(
            100_000, arrival_rate=8.0, tasks_per_job=1,
            arrival_process="mmpp", burstiness=4.0, seed=0,
        )
        empirical_rate = len(trace) / float(trace.arrival_times[-1])
        assert empirical_rate == pytest.approx(8.0, rel=0.1)

    def test_mmpp_parameter_validation(self):
        with pytest.raises(ValueError, match="burstiness"):
            job_trace_arrays(5, 1.0, 1, arrival_process="mmpp", burstiness=0.5)
        with pytest.raises(ValueError, match="switch_prob"):
            job_trace_arrays(5, 1.0, 1, arrival_process="mmpp", switch_prob=0.0)
        with pytest.raises(ValueError, match="arrival_process"):
            job_trace_arrays(5, 1.0, 1, arrival_process="fractal")

    def test_worker_speeds_unit_mean_and_validation(self):
        assert worker_speeds(8).tolist() == [1.0] * 8
        speeds = worker_speeds(5000, spread=0.4, seed=3)
        assert float(speeds.min()) > 0.0
        assert float(speeds.mean()) == pytest.approx(1.0, rel=0.05)
        with pytest.raises(ValueError):
            worker_speeds(0)
        with pytest.raises(ValueError):
            worker_speeds(4, spread=-0.1)


class TestJobTraceArrays:
    def test_matches_object_trace_value_for_value(self):
        arrays = job_trace_arrays(60, arrival_rate=3.0, tasks_per_job=3, seed=11)
        objects = poisson_job_trace(60, arrival_rate=3.0, tasks_per_job=3, seed=11)
        assert arrays.arrival_times.tolist() == [j.arrival_time for j in objects]
        assert arrays.durations.tolist() == [
            list(j.task_durations) for j in objects
        ]
        assert arrays.total_tasks == objects.total_tasks

    def test_to_trace_round_trip(self):
        arrays = job_trace_arrays(12, 2.0, 2, seed=0)
        trace = arrays.to_trace()
        assert len(trace) == 12
        assert trace.tasks_per_job == 2

    def test_shape_mismatch_rejected(self):
        from repro.simulation.workloads import JobTraceArrays

        with pytest.raises(ValueError, match="shape"):
            JobTraceArrays(
                arrival_times=np.zeros(3), durations=np.ones((2, 2)),
                arrival_rate=1.0, mean_task_duration=1.0,
            )

    def test_zero_task_jobs_rejected(self):
        from repro.simulation.workloads import JobTraceArrays

        with pytest.raises(ValueError, match="at least one task"):
            JobTraceArrays(
                arrival_times=np.zeros(2), durations=np.empty((2, 0)),
                arrival_rate=1.0, mean_task_duration=1.0,
            )


class TestSamplerValidation:
    """Regression: a sampler drawing zero/negative durations would schedule
    TASK_FINISH at or before the arrival tick; the workload boundary must
    reject it with a clear error."""

    @pytest.mark.parametrize("bad_value", [0.0, -1.0])
    def test_non_positive_custom_sampler_rejected(self, bad_value):
        def sampler(rng, size):
            out = rng.exponential(1.0, size=size)
            out.flat[0] = bad_value
            return out

        with pytest.raises(ValueError, match="non-positive duration"):
            job_trace_arrays(10, 1.0, 2, duration_distribution=sampler, seed=0)

    def test_non_finite_custom_sampler_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            job_trace_arrays(
                4, 1.0, 2,
                duration_distribution=lambda rng, size: np.full(size, np.nan),
            )

    def test_wrong_shape_custom_sampler_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            job_trace_arrays(
                4, 1.0, 2, duration_distribution=lambda rng, size: np.ones(3)
            )

    def test_valid_custom_sampler_accepted(self):
        trace = job_trace_arrays(
            6, 1.0, 2,
            duration_distribution=lambda rng, size: rng.uniform(1.0, 2.0, size=size),
            seed=1,
        )
        assert float(trace.durations.min()) >= 1.0


class TestFileSizes:
    def test_matches_file_population_draws(self):
        sizes = file_sizes(40, size_distribution="exponential", seed=7)
        population = file_population(
            40, replicas=2, size_distribution="exponential", seed=7
        )
        assert sizes.tolist() == [f.size for f in population]

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            file_sizes(4, size_distribution="weibull")


class TestZipfWeights:
    def test_normalized(self):
        weights = zipf_weights(100, 1.0)
        assert weights.sum() == pytest.approx(1.0)

    def test_decreasing(self):
        weights = zipf_weights(50, 1.2)
        assert all(weights[i] >= weights[i + 1] for i in range(len(weights) - 1))

    def test_zero_exponent_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert np.allclose(weights, 0.1)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(5, -1.0)


class TestFilePopulation:
    def test_count_and_replicas(self):
        files = file_population(50, replicas=3, seed=0)
        assert len(files) == 50
        assert all(f.replicas == 3 for f in files)

    def test_constant_sizes(self):
        files = file_population(10, replicas=2, mean_size=4.0, seed=0)
        assert all(f.size == pytest.approx(4.0) for f in files)

    def test_exponential_sizes_have_mean(self):
        files = file_population(
            5000, replicas=2, size_distribution="exponential", mean_size=2.0, seed=1
        )
        assert np.mean([f.size for f in files]) == pytest.approx(2.0, rel=0.1)

    def test_lognormal_sizes_positive(self):
        files = file_population(
            100, replicas=2, size_distribution="lognormal", mean_size=1.0, seed=2
        )
        assert all(f.size > 0 for f in files)

    def test_popularity_normalized(self):
        files = file_population(100, replicas=2, popularity_exponent=1.0, seed=3)
        assert sum(f.popularity for f in files) == pytest.approx(1.0)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            file_population(5, replicas=2, size_distribution="pareto")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            file_population(-1, replicas=2)
        with pytest.raises(ValueError):
            file_population(5, replicas=0)
