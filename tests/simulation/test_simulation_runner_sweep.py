"""Unit tests for the experiment runner and the parameter sweeps."""

from __future__ import annotations

import pytest

from repro.core.process import run_kd_choice
from repro.simulation.runner import ExperimentRunner, run_trials
from repro.simulation.sweep import KDGridSweep, ParameterSweep


def _factory(seed: int):
    return run_kd_choice(n_bins=128, k=2, d=4, seed=seed)


class TestExperimentRunner:
    def test_runs_requested_number_of_trials(self):
        runner = ExperimentRunner(trials=4, seed=0)
        outcome = runner.run(_factory, label="test")
        assert len(outcome.trials) == 4
        assert outcome.label == "test"

    def test_default_metrics_present(self):
        outcome = ExperimentRunner(trials=2, seed=0).run(_factory)
        assert set(outcome.trials[0].metrics) == {"max_load", "gap", "messages"}

    def test_custom_metrics(self):
        runner = ExperimentRunner(
            trials=2, seed=0, metrics={"empty": lambda r: float((r.loads == 0).sum())}
        )
        outcome = runner.run(_factory)
        assert "empty" in outcome.trials[0].metrics

    def test_statistics_and_observed_set(self):
        outcome = ExperimentRunner(trials=5, seed=1).run(_factory)
        stats = outcome.statistics("max_load")
        assert stats.count == 5
        assert set(outcome.observed_set("max_load")) <= {1, 2, 3, 4}

    def test_record_flattens_metrics(self):
        record = ExperimentRunner(trials=3, seed=1).run(_factory, label="L").record()
        assert record["label"] == "L"
        assert "max_load_mean" in record
        assert "messages_max" in record

    def test_reproducible_with_same_seed(self):
        a = ExperimentRunner(trials=3, seed=7).run(_factory)
        b = ExperimentRunner(trials=3, seed=7).run(_factory)
        assert a.metric_values("max_load") == b.metric_values("max_load")

    def test_run_many_labels(self):
        runner = ExperimentRunner(trials=2, seed=0)
        outcomes = runner.run_many({"a": _factory, "b": _factory})
        assert set(outcomes) == {"a", "b"}

    def test_invalid_trials_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(trials=0)

    def test_run_trials_helper(self):
        values = run_trials(_factory, trials=4, seed=2)
        assert len(values) == 4
        assert all(v >= 1 for v in values)


class TestParameterSweep:
    def test_points_cartesian_product(self):
        sweep = ParameterSweep(
            grid={"x": [1, 2], "y": ["a", "b"]},
            factory=lambda params, seed: run_kd_choice(64, 1, 2, seed=seed),
        )
        points = list(sweep.points())
        assert len(points) == 4

    def test_filter_applies(self):
        sweep = ParameterSweep(
            grid={"x": [1, 2, 3]},
            factory=lambda params, seed: run_kd_choice(64, 1, 2, seed=seed),
            filter_fn=lambda params: params["x"] != 2,
        )
        assert len(list(sweep.points())) == 2

    def test_run_table_contains_parameters_and_metrics(self):
        sweep = ParameterSweep(
            grid={"d": [2, 4]},
            factory=lambda params, seed: run_kd_choice(64, 1, int(params["d"]), seed=seed),
        )
        table = sweep.run_table(trials=2, seed=0, title="t")
        assert len(table) == 2
        assert "d" in table.columns
        assert any(col.startswith("max_load") for col in table.columns)


class TestKDGridSweep:
    def test_skips_invalid_cells(self):
        sweep = KDGridSweep(n=64, k_values=[1, 4], d_values=[2, 8])
        points = list(sweep.points())
        # (4, 2) must be skipped.
        combos = {(p.params["k"], p.params["d"]) for p in points}
        assert (4, 2) not in combos
        assert (1, 2) in combos

    def test_extra_filter(self):
        sweep = KDGridSweep(
            n=64, k_values=[1, 2], d_values=[2, 4], extra_filter=lambda k, d: d == 2 * k
        )
        combos = {(p.params["k"], p.params["d"]) for p in sweep.points()}
        assert combos == {(1, 2), (2, 4)}

    def test_heavy_load_parameter(self):
        sweep = KDGridSweep(n=64, k_values=[1], d_values=[2], m=256)
        point = next(iter(sweep.points()))
        assert point.params["m"] == 256

    def test_run_produces_outcomes(self):
        sweep = KDGridSweep(n=64, k_values=[1], d_values=[2, 4])
        outcomes = sweep.run(trials=2, seed=0)
        assert len(outcomes) == 2
        for point, outcome in outcomes:
            assert len(outcome.trials) == 2
