"""Unit tests for ResultTable and GridTable rendering."""

from __future__ import annotations

import pytest

from repro.simulation.results import GridTable, ResultTable


class TestResultTable:
    def test_add_and_len(self):
        table = ResultTable(columns=["a", "b"])
        table.add({"a": 1, "b": 2})
        table.add({"a": 3, "b": 4})
        assert len(table) == 2

    def test_extend(self):
        table = ResultTable(columns=["a"])
        table.extend([{"a": 1}, {"a": 2}, {"a": 3}])
        assert len(table) == 3

    def test_column_accessor(self):
        table = ResultTable(columns=["a", "b"])
        table.extend([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert table.column("a") == [1, 3]

    def test_missing_columns_render_empty(self):
        table = ResultTable(columns=["a", "b"])
        table.add({"a": 1})
        text = table.to_text()
        assert "1" in text

    def test_to_text_contains_header_and_title(self):
        table = ResultTable(columns=["scheme", "max"], title="My Table")
        table.add({"scheme": "x", "max": 3})
        text = table.to_text()
        assert "My Table" in text
        assert "scheme" in text
        assert "max" in text

    def test_float_formatting(self):
        table = ResultTable(columns=["v"])
        table.add({"v": 3.14159265})
        assert "3.142" in table.to_text()

    def test_to_csv_header_and_rows(self):
        table = ResultTable(columns=["a", "b"])
        table.add({"a": 1, "b": "x"})
        csv_text = table.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,x"

    def test_csv_ignores_extra_keys(self):
        table = ResultTable(columns=["a"])
        table.add({"a": 1, "junk": 99})
        assert "junk" not in table.to_csv()

    def test_iteration_yields_rows(self):
        table = ResultTable(columns=["a"])
        table.add({"a": 5})
        assert list(table) == [{"a": 5}]

    def test_empty_table_renders(self):
        table = ResultTable(columns=["a", "b"], title="Empty")
        text = table.to_text()
        assert "Empty" in text
        assert "a" in text


class TestGridTable:
    def test_set_and_get(self):
        grid = GridTable(row_labels=["r1", "r2"], column_labels=["c1", "c2"])
        grid.set("r1", "c2", "7")
        assert grid.get("r1", "c2") == "7"
        assert grid.get("r2", "c1") is None

    def test_unknown_labels_rejected(self):
        grid = GridTable(row_labels=["r1"], column_labels=["c1"])
        with pytest.raises(KeyError):
            grid.set("bad", "c1", 1)
        with pytest.raises(KeyError):
            grid.set("r1", "bad", 1)

    def test_missing_cells_render_dash(self):
        grid = GridTable(row_labels=["r1"], column_labels=["c1", "c2"])
        grid.set("r1", "c1", "2")
        text = grid.to_text()
        assert "-" in text
        assert "2" in text

    def test_title_and_headers_rendered(self):
        grid = GridTable(
            row_labels=["k = 1"], column_labels=["d = 2"], title="Table 1"
        )
        grid.set("k = 1", "d = 2", "3, 4")
        text = grid.to_text()
        assert "Table 1" in text
        assert "d = 2" in text
        assert "k = 1" in text
        assert "3, 4" in text

    def test_custom_missing_marker(self):
        grid = GridTable(row_labels=["r"], column_labels=["c"], missing="·")
        assert "·" in grid.to_text()

    def test_str_equals_to_text(self):
        grid = GridTable(row_labels=["r"], column_labels=["c"])
        assert str(grid) == grid.to_text()
