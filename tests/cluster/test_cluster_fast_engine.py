"""The fast event core must be seed-for-seed identical to the reference.

The array engine (:func:`repro.cluster.simulator.simulate_cluster_fast`)
draws the same random variates and replays the same event order as
:class:`~repro.cluster.simulator.ClusterSimulator`, so for every supported
scheduler the two engines must emit *equal* :class:`ClusterReport` objects —
including at tie-heavy workloads (constant durations) where event ordering
is the hard part.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.events import EventHeap
from repro.cluster.schedulers import (
    BatchSamplingScheduler,
    LateBindingScheduler,
    PerTaskDChoiceScheduler,
    RandomScheduler,
)
from repro.cluster.simulator import (
    ClusterSimulator,
    simulate_cluster,
    simulate_cluster_fast,
)
from repro.simulation.workloads import (
    job_trace_arrays,
    poisson_job_trace,
    worker_speeds,
)

FAST_SCHEDULERS = [RandomScheduler, PerTaskDChoiceScheduler, BatchSamplingScheduler]


class TestEventHeap:
    def test_orders_by_time_then_sequence(self):
        heap = EventHeap()
        heap.push(2.0, 10)
        heap.push(1.0, 20)
        heap.push(1.0, 30)
        assert heap.pop() == (1.0, 1, 20)
        assert heap.pop() == (1.0, 2, 30)
        assert heap.pop() == (2.0, 0, 10)

    def test_first_sequence_offsets_tie_order(self):
        # Sequences start at 5, so these finish-style events sort after any
        # notional arrival sequence 0..4 at the same instant.
        heap = EventHeap(first_sequence=5)
        heap.push(1.0, 0)
        assert heap.pop() == (1.0, 5, 0)

    def test_pop_until_is_strict(self):
        heap = EventHeap()
        for time, tag in [(0.5, 1), (1.0, 2), (1.5, 3)]:
            heap.push(time, tag)
        assert heap.pop_until(1.0) == (1,)
        assert len(heap) == 2
        assert heap.next_time() == 1.0

    def test_rejects_negative_times_and_empty_pop(self):
        heap = EventHeap()
        with pytest.raises(ValueError):
            heap.push(-0.1, 0)
        with pytest.raises(IndexError):
            heap.pop()
        assert heap.next_time() is None


class TestFastReferenceEquivalence:
    @pytest.mark.parametrize("scheduler_cls", FAST_SCHEDULERS)
    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_reports_identical_for_fixed_seed(self, scheduler_cls, seed):
        trace = poisson_job_trace(
            n_jobs=120, arrival_rate=6.0, tasks_per_job=5, seed=seed
        )
        reference = ClusterSimulator(24, scheduler_cls(), seed=seed + 1).run(trace)
        fast = simulate_cluster_fast(24, scheduler_cls(), trace, seed=seed + 1)
        assert reference == fast

    @pytest.mark.parametrize("scheduler_cls", FAST_SCHEDULERS)
    def test_identical_under_tie_heavy_constant_durations(self, scheduler_cls):
        # Constant service times produce exact finish/arrival coincidences;
        # the engines must break those ties identically.
        trace = poisson_job_trace(
            n_jobs=200, arrival_rate=8.0, tasks_per_job=4,
            duration_distribution="constant", seed=3,
        )
        reference = ClusterSimulator(16, scheduler_cls(), seed=11).run(trace)
        fast = simulate_cluster_fast(16, scheduler_cls(), trace, seed=11)
        assert reference == fast

    @pytest.mark.parametrize(
        "scenario",
        [
            {"duration_distribution": "pareto"},
            {"duration_distribution": "lognormal", "duration_shape": 1.2},
            {"arrival_process": "mmpp", "burstiness": 6.0},
        ],
        ids=["pareto", "lognormal", "mmpp"],
    )
    def test_identical_across_scenario_library(self, scenario):
        trace = poisson_job_trace(
            n_jobs=150, arrival_rate=5.0, tasks_per_job=4, seed=5, **scenario
        )
        reference = ClusterSimulator(24, BatchSamplingScheduler(), seed=6).run(trace)
        fast = simulate_cluster_fast(24, BatchSamplingScheduler(), trace, seed=6)
        assert reference == fast

    def test_identical_with_heterogeneous_workers(self):
        speeds = worker_speeds(16, spread=0.6, seed=1)
        trace = poisson_job_trace(n_jobs=100, arrival_rate=4.0, tasks_per_job=3, seed=2)
        reference = ClusterSimulator(
            16, BatchSamplingScheduler(), seed=9, speeds=speeds
        ).run(trace)
        fast = simulate_cluster_fast(
            16, BatchSamplingScheduler(), trace, seed=9, speeds=speeds
        )
        assert reference == fast

    def test_array_and_object_traces_are_interchangeable(self):
        arrays = job_trace_arrays(80, 5.0, 4, seed=3)
        from_arrays = simulate_cluster_fast(16, BatchSamplingScheduler(), arrays, seed=4)
        from_objects = simulate_cluster_fast(
            16, BatchSamplingScheduler(), arrays.to_trace(), seed=4
        )
        reference = ClusterSimulator(16, BatchSamplingScheduler(), seed=4).run(
            arrays.to_trace()
        )
        assert from_arrays == from_objects == reference

    def test_unsorted_job_sequences_match_reference(self):
        # Hand-built traces need not arrive time-sorted; the fast core must
        # replay the reference queue's (time, push order) event order.
        from repro.simulation.workloads import JobSpec

        specs = [
            JobSpec(job_id=0, arrival_time=10.0, task_durations=(1.0, 2.0)),
            JobSpec(job_id=1, arrival_time=0.0, task_durations=(3.0,)),
            JobSpec(job_id=2, arrival_time=0.5, task_durations=(1.0, 1.0, 1.0)),
            JobSpec(job_id=3, arrival_time=0.5, task_durations=(2.0,)),  # tie
        ]
        for scheduler_cls in FAST_SCHEDULERS:
            reference = ClusterSimulator(4, scheduler_cls(), seed=3).run(specs)
            fast = simulate_cluster_fast(4, scheduler_cls(), specs, seed=3)
            assert reference == fast, scheduler_cls.__name__

    def test_placement_counts_match_reference_tasks_completed(self):
        trace = poisson_job_trace(n_jobs=60, arrival_rate=4.0, tasks_per_job=4, seed=8)
        simulator = ClusterSimulator(12, BatchSamplingScheduler(), seed=9)
        simulator.run(trace)
        counts = np.zeros(12, dtype=np.int64)
        simulate_cluster_fast(
            12, BatchSamplingScheduler(), trace, seed=9, placement_counts=counts
        )
        assert counts.tolist() == [w.tasks_completed for w in simulator.workers]


class TestEngineDispatch:
    def test_auto_uses_fast_core_and_matches_reference(self):
        trace = poisson_job_trace(n_jobs=50, arrival_rate=4.0, tasks_per_job=3, seed=0)
        auto = simulate_cluster(8, BatchSamplingScheduler(), trace, seed=1)
        forced = simulate_cluster(
            8, BatchSamplingScheduler(), trace, seed=1, engine="reference"
        )
        assert auto == forced

    def test_late_binding_falls_back_to_reference(self):
        trace = poisson_job_trace(n_jobs=30, arrival_rate=3.0, tasks_per_job=2, seed=0)
        report = simulate_cluster(8, LateBindingScheduler(), trace, seed=1)
        assert report.scheduler.startswith("late-binding")

    def test_forced_fast_engine_rejects_late_binding(self):
        trace = poisson_job_trace(n_jobs=10, arrival_rate=3.0, tasks_per_job=2, seed=0)
        with pytest.raises(ValueError, match="fast"):
            simulate_cluster(8, LateBindingScheduler(), trace, seed=1, engine="fast")

    def test_unknown_engine_rejected(self):
        trace = poisson_job_trace(n_jobs=5, arrival_rate=3.0, tasks_per_job=2, seed=0)
        with pytest.raises(ValueError, match="engine"):
            simulate_cluster(8, RandomScheduler(), trace, seed=1, engine="warp")
