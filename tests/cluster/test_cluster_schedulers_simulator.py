"""Unit tests for the cluster schedulers and the discrete-event simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.jobs import JobRecord
from repro.cluster.metrics import build_report
from repro.cluster.schedulers import (
    BatchSamplingScheduler,
    LateBindingScheduler,
    PerTaskDChoiceScheduler,
    RandomScheduler,
)
from repro.cluster.simulator import ClusterSimulator, simulate_cluster
from repro.cluster.workers import Worker
from repro.simulation.workloads import JobSpec, poisson_job_trace


@pytest.fixture
def rng():
    return np.random.default_rng(3)


@pytest.fixture
def workers():
    return [Worker(i) for i in range(8)]


def _job(k=4, arrival=0.0, duration=1.0):
    spec = JobSpec(job_id=0, arrival_time=arrival, task_durations=(duration,) * k)
    return JobRecord.from_spec(spec)


class TestSchedulers:
    def test_random_places_every_task(self, workers, rng):
        decision = RandomScheduler().schedule_job(_job(5), workers, 0.0, rng)
        assert len(decision.placements) == 5
        assert decision.messages == 5

    def test_per_task_d_choice_message_cost(self, workers, rng):
        decision = PerTaskDChoiceScheduler(d=3).schedule_job(_job(4), workers, 0.0, rng)
        assert decision.messages == 12
        assert len(decision.placements) == 4

    def test_per_task_prefers_short_queues(self, workers, rng):
        # Load worker 0 heavily; per-task two-choice should mostly avoid it.
        for _ in range(10):
            workers[0].enqueue(_job(1).tasks[0], now=0.0)
        decision = PerTaskDChoiceScheduler(d=8).schedule_job(_job(4), workers, 0.0, rng)
        assert all(worker_id != 0 for worker_id, _ in decision.placements)

    def test_per_task_invalid_d(self):
        with pytest.raises(ValueError):
            PerTaskDChoiceScheduler(d=0)

    def test_batch_sampling_probe_count(self, workers, rng):
        scheduler = BatchSamplingScheduler(probe_ratio=2.0)
        decision = scheduler.schedule_job(_job(3), workers, 0.0, rng)
        assert decision.messages == 6
        assert len(decision.placements) == 3

    def test_batch_sampling_fixed_d(self, workers, rng):
        scheduler = BatchSamplingScheduler(d=7)
        decision = scheduler.schedule_job(_job(3), workers, 0.0, rng)
        assert decision.messages == 7

    def test_batch_sampling_probe_count_clamped_to_workers(self, workers):
        scheduler = BatchSamplingScheduler(probe_ratio=10.0)
        assert scheduler.probes_for(k=4, n_workers=8) == 8

    def test_batch_sampling_probes_at_least_k(self, workers):
        scheduler = BatchSamplingScheduler(probe_ratio=0.5)
        assert scheduler.probes_for(k=4, n_workers=8) >= 4

    def test_batch_sampling_invalid_parameters(self):
        with pytest.raises(ValueError):
            BatchSamplingScheduler(probe_ratio=0.0)
        with pytest.raises(ValueError):
            BatchSamplingScheduler(d=0)

    def test_late_binding_places_reservations(self, workers, rng):
        scheduler = LateBindingScheduler(probe_ratio=2.0)
        decision = scheduler.schedule_job(_job(3), workers, 0.0, rng)
        assert decision.messages == 6
        assert len(decision.placements) == 6  # d reservations

    def test_late_binding_invalid_ratio(self):
        with pytest.raises(ValueError):
            LateBindingScheduler(probe_ratio=-1)


class TestSimulator:
    def _trace(self, n_jobs=60, k=4, seed=0, rate=3.0):
        return poisson_job_trace(
            n_jobs=n_jobs, arrival_rate=rate, tasks_per_job=k, seed=seed
        )

    @pytest.mark.parametrize(
        "scheduler",
        [
            RandomScheduler(),
            PerTaskDChoiceScheduler(d=2),
            BatchSamplingScheduler(probe_ratio=2.0),
            LateBindingScheduler(probe_ratio=2.0),
        ],
    )
    def test_every_job_completes(self, scheduler):
        trace = self._trace()
        report = simulate_cluster(16, scheduler, trace, seed=1)
        assert report.n_jobs == len(trace)
        assert report.n_tasks == trace.total_tasks

    def test_response_time_at_least_service_time(self):
        trace = self._trace()
        report = simulate_cluster(16, RandomScheduler(), trace, seed=1)
        min_duration = min(min(job.task_durations) for job in trace)
        assert report.mean_response >= min_duration

    def test_message_accounting_per_task_probing(self):
        trace = self._trace(n_jobs=20, k=4)
        report = simulate_cluster(16, PerTaskDChoiceScheduler(d=2), trace, seed=1)
        assert report.messages == 2 * trace.total_tasks

    def test_message_accounting_batch(self):
        trace = self._trace(n_jobs=20, k=4)
        report = simulate_cluster(16, BatchSamplingScheduler(probe_ratio=2.0), trace, seed=1)
        assert report.messages == 8 * len(trace)

    def test_deterministic_given_seed(self):
        trace = self._trace(n_jobs=30)
        a = simulate_cluster(8, BatchSamplingScheduler(), trace, seed=5)
        b = simulate_cluster(8, BatchSamplingScheduler(), trace, seed=5)
        assert a.mean_response == pytest.approx(b.mean_response)

    def test_single_worker_serializes_everything(self):
        spec = [
            JobSpec(job_id=i, arrival_time=0.0, task_durations=(1.0,)) for i in range(4)
        ]
        report = simulate_cluster(1, RandomScheduler(), spec, seed=0)
        # One worker, four unit tasks arriving together: last finishes at 4.
        assert report.max_response == pytest.approx(4.0)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ClusterSimulator(0, RandomScheduler())

    def test_utilization_bounded(self):
        trace = self._trace()
        report = simulate_cluster(16, RandomScheduler(), trace, seed=2)
        assert 0.0 <= report.mean_utilization <= 1.0

    def test_batch_sampling_beats_per_task_for_parallel_jobs(self):
        # The paper's motivating claim, at moderate load and high parallelism.
        trace = poisson_job_trace(
            n_jobs=200, arrival_rate=1.4, tasks_per_job=16, seed=11
        )
        per_task = simulate_cluster(32, PerTaskDChoiceScheduler(d=2), trace, seed=3)
        batch = simulate_cluster(32, BatchSamplingScheduler(probe_ratio=2.0), trace, seed=3)
        assert batch.mean_response <= per_task.mean_response * 1.05

    def test_report_requires_finished_jobs(self, workers):
        job = _job(2)
        with pytest.raises(ValueError):
            build_report("x", [job], workers, messages=0, horizon=1.0)

    def test_report_as_dict_fields(self):
        trace = self._trace(n_jobs=10)
        report = simulate_cluster(8, RandomScheduler(), trace, seed=1)
        record = report.as_dict()
        assert record["scheduler"] == "random"
        assert record["jobs"] == 10
        assert "p99_response" in record
