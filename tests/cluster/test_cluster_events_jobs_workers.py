"""Unit tests for the cluster substrate primitives: events, jobs, workers."""

from __future__ import annotations

import pytest

from repro.cluster.events import JOB_ARRIVAL, TASK_FINISH, EventQueue
from repro.cluster.jobs import JobRecord, TaskRecord
from repro.cluster.workers import Reservation, Worker
from repro.simulation.workloads import JobSpec


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, TASK_FINISH)
        queue.push(1.0, JOB_ARRIVAL)
        queue.push(2.0, TASK_FINISH)
        times = [queue.pop().time for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        first = queue.push(1.0, "a", payload="first")
        second = queue.push(1.0, "b", payload="second")
        assert queue.pop().payload == "first"
        assert queue.pop().payload == "second"
        assert first.sequence < second.sequence

    def test_peek_does_not_remove(self):
        queue = EventQueue()
        queue.push(1.0, "a")
        assert queue.peek() is not None
        assert len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, "a")

    def test_bool_and_len(self):
        queue = EventQueue()
        assert not queue
        queue.push(0.0, "a")
        assert queue and len(queue) == 1


class TestTaskAndJobRecords:
    def _job(self):
        spec = JobSpec(job_id=1, arrival_time=2.0, task_durations=(1.0, 3.0))
        return JobRecord.from_spec(spec)

    def test_from_spec_creates_tasks(self):
        job = self._job()
        assert len(job.tasks) == 2
        assert all(t.arrival_time == 2.0 for t in job.tasks)

    def test_unfinished_job_raises_on_metrics(self):
        job = self._job()
        with pytest.raises(ValueError):
            _ = job.finish_time

    def test_response_time_is_last_task_finish(self):
        job = self._job()
        job.tasks[0].start_time = 2.0
        job.tasks[0].finish_time = 3.0
        job.tasks[1].start_time = 4.0
        job.tasks[1].finish_time = 7.0
        assert job.finished
        assert job.finish_time == 7.0
        assert job.response_time == pytest.approx(5.0)

    def test_mean_task_wait(self):
        job = self._job()
        job.tasks[0].start_time = 2.0
        job.tasks[0].finish_time = 3.0
        job.tasks[1].start_time = 4.0
        job.tasks[1].finish_time = 7.0
        assert job.mean_task_wait == pytest.approx((0.0 + 2.0) / 2)

    def test_task_wait_requires_start(self):
        task = TaskRecord(job_id=0, task_index=0, duration=1.0, arrival_time=0.0)
        with pytest.raises(ValueError):
            _ = task.wait_time
        with pytest.raises(ValueError):
            _ = task.response_time


class TestWorker:
    def _task(self, duration=2.0, arrival=0.0):
        return TaskRecord(job_id=0, task_index=0, duration=duration, arrival_time=arrival)

    def test_idle_worker_starts_task_immediately(self):
        worker = Worker(0)
        task = self._task()
        started = worker.enqueue(task, now=1.0)
        assert started is task
        assert worker.running is task
        assert task.start_time == 1.0
        assert worker.busy_until == 3.0

    def test_busy_worker_queues_tasks(self):
        worker = Worker(0)
        worker.enqueue(self._task(), now=0.0)
        second = self._task()
        assert worker.enqueue(second, now=0.5) is None
        assert worker.queue_length == 2

    def test_queue_length_counts_running_and_queued(self):
        worker = Worker(0)
        assert worker.queue_length == 0
        worker.enqueue(self._task(), now=0.0)
        worker.enqueue(self._task(), now=0.0)
        worker.enqueue(self._task(), now=0.0)
        assert worker.queue_length == 3

    def test_finish_current_starts_next(self):
        worker = Worker(0)
        first = self._task(duration=1.0)
        second = self._task(duration=2.0)
        worker.enqueue(first, now=0.0)
        worker.enqueue(second, now=0.0)
        started = worker.finish_current(now=1.0)
        assert first.finish_time == 1.0
        assert started is second
        assert second.start_time == 1.0

    def test_finish_without_running_raises(self):
        with pytest.raises(RuntimeError):
            Worker(0).finish_current(now=1.0)

    def test_pending_work_estimate(self):
        worker = Worker(0)
        worker.enqueue(self._task(duration=4.0), now=0.0)
        worker.enqueue(self._task(duration=2.0), now=0.0)
        assert worker.pending_work(now=1.0) == pytest.approx(3.0 + 2.0)

    def test_utilization(self):
        worker = Worker(0)
        task = self._task(duration=2.0)
        worker.enqueue(task, now=0.0)
        worker.finish_current(now=2.0)
        assert worker.utilization(horizon=4.0) == pytest.approx(0.5)
        assert worker.utilization(horizon=0.0) == 0.0

    def test_reservation_claimed_when_reaching_head(self):
        worker = Worker(0)
        claimed_task = self._task(duration=1.5)

        def claim(worker_id, now):
            return claimed_task

        started = worker.enqueue(Reservation(job_id=7, claim=claim), now=0.0)
        assert started is claimed_task
        assert claimed_task.worker_id == 0

    def test_unclaimable_reservation_discarded(self):
        worker = Worker(0)

        def claim(worker_id, now):
            return None

        started = worker.enqueue(Reservation(job_id=7, claim=claim), now=0.0)
        assert started is None
        assert worker.running is None

    def test_reservation_behind_task_claimed_on_finish(self):
        worker = Worker(0)
        first = self._task(duration=1.0)
        reserved = self._task(duration=2.0)
        worker.enqueue(first, now=0.0)
        worker.enqueue(Reservation(job_id=1, claim=lambda w, t: reserved), now=0.0)
        started = worker.finish_current(now=1.0)
        assert started is reserved

    def test_empty_reservation_skipped_on_finish(self):
        worker = Worker(0)
        first = self._task(duration=1.0)
        final = self._task(duration=1.0)
        worker.enqueue(first, now=0.0)
        worker.enqueue(Reservation(job_id=1, claim=lambda w, t: None), now=0.0)
        worker.enqueue(final, now=0.0)
        started = worker.finish_current(now=1.0)
        # The empty reservation is discarded and the next real task starts.
        assert started is final
