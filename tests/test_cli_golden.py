"""Golden-file CLI tests: both engines must emit byte-identical output.

The golden files under ``tests/data/golden/`` were generated with the
scalar reference engine at pinned seeds.  Every test runs the CLI in-process
and compares stdout byte for byte:

* ``--engine scalar`` must match the stored golden exactly (no drift in the
  scalar reference or the table formatting), and
* ``--engine vectorized`` must match the same bytes (the engines are
  seed-for-seed identical) — modulo the one header token that echoes the
  requested engine name back.

Regenerate a golden (only after an *intentional* output change) with e.g.::

    PYTHONPATH=src python -m repro table1 --small --engine scalar \
        > tests/data/golden/table1_small.txt
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main

GOLDEN_DIR = Path(__file__).parent / "data" / "golden"

TABLE1_ARGS = ["table1", "--small"]
SIMULATE_KD_ARGS = [
    "simulate", "--scheme", "kd_choice",
    "--param", "n_bins=2048", "--param", "k=4", "--param", "d=8",
    "--trials", "3", "--seed", "7",
]
SIMULATE_WEIGHTED_ARGS = [
    "simulate", "--scheme", "weighted_kd_choice",
    "--param", "n_bins=1024", "--param", "k=4", "--param", "d=8",
    "--param", "weights=exponential", "--trials", "2", "--seed", "3",
]
CLUSTER_ARGS = [
    "cluster", "--workers", "32", "--trace-jobs", "60", "--tasks-per-job", "4",
    "--trials", "2", "--seed", "7",
]
STORAGE_ARGS = [
    "storage", "--servers", "64", "--files", "200", "--trials", "2",
    "--seed", "7",
]


def run_cli(capsys, argv) -> str:
    assert main(argv) == 0
    return capsys.readouterr().out


def golden(name: str) -> str:
    return (GOLDEN_DIR / name).read_text(encoding="utf-8")


class TestTable1Golden:
    @pytest.mark.parametrize("engine", ["scalar", "vectorized"])
    def test_small_grid_matches_golden(self, capsys, engine):
        output = run_cli(capsys, TABLE1_ARGS + ["--engine", engine])
        assert output == golden("table1_small.txt")

    def test_auto_engine_matches_golden(self, capsys):
        # "auto" resolves to the vectorized fast path for kd_choice; the
        # output must not depend on that choice.
        output = run_cli(capsys, TABLE1_ARGS)
        assert output == golden("table1_small.txt")


class TestSimulateGolden:
    @pytest.mark.parametrize(
        "args,golden_name",
        [
            (SIMULATE_KD_ARGS, "simulate_kd_choice.txt"),
            (SIMULATE_WEIGHTED_ARGS, "simulate_weighted.txt"),
        ],
        ids=["kd_choice", "weighted"],
    )
    def test_scalar_engine_matches_golden(self, capsys, args, golden_name):
        output = run_cli(capsys, args + ["--engine", "scalar"])
        assert output == golden(golden_name)

    @pytest.mark.parametrize(
        "args,golden_name",
        [
            (SIMULATE_KD_ARGS, "simulate_kd_choice.txt"),
            (SIMULATE_WEIGHTED_ARGS, "simulate_weighted.txt"),
        ],
        ids=["kd_choice", "weighted"],
    )
    def test_vectorized_engine_matches_golden_bytes(self, capsys, args, golden_name):
        # The spec header echoes the *requested* engine name; normalize that
        # one token, then require byte equality for everything else (all the
        # numbers, labels and ordering).
        output = run_cli(capsys, args + ["--engine", "vectorized"])
        normalized = output.replace("(engine=vectorized,", "(engine=scalar,", 1)
        assert normalized == golden(golden_name)


class TestSubstrateGolden:
    """The substrate subcommands under both engines, against stored goldens.

    The fast event core / fast storage core are seed-for-seed identical to
    the reference simulators, so ``--engine vectorized`` must reproduce the
    scalar golden byte for byte (modulo the echoed engine token).
    """

    @pytest.mark.parametrize(
        "args,golden_name",
        [(CLUSTER_ARGS, "cluster_run.txt"), (STORAGE_ARGS, "storage_run.txt")],
        ids=["cluster", "storage"],
    )
    def test_scalar_engine_matches_golden(self, capsys, args, golden_name):
        output = run_cli(capsys, args + ["--engine", "scalar"])
        assert output == golden(golden_name)

    @pytest.mark.parametrize(
        "args,golden_name",
        [(CLUSTER_ARGS, "cluster_run.txt"), (STORAGE_ARGS, "storage_run.txt")],
        ids=["cluster", "storage"],
    )
    @pytest.mark.parametrize("engine", ["vectorized", "auto"])
    def test_fast_engines_match_golden_bytes(self, capsys, args, golden_name, engine):
        output = run_cli(capsys, args + ["--engine", engine])
        normalized = output.replace(f"(engine={engine},", "(engine=scalar,", 1)
        assert normalized == golden(golden_name)

    @pytest.mark.parametrize(
        "args,golden_name",
        [(CLUSTER_ARGS, "cluster_run.txt"), (STORAGE_ARGS, "storage_run.txt")],
        ids=["cluster", "storage"],
    )
    def test_parallel_trials_match_golden_bytes(self, capsys, args, golden_name):
        output = run_cli(capsys, args + ["--engine", "scalar", "--jobs", "2"])
        assert output == golden(golden_name)

    @pytest.mark.parametrize(
        "args,golden_name",
        [(CLUSTER_ARGS, "cluster_run.txt"), (STORAGE_ARGS, "storage_run.txt")],
        ids=["cluster", "storage"],
    )
    def test_warm_cache_matches_golden_bytes(self, capsys, tmp_path, args, golden_name):
        argv = args + ["--engine", "scalar", "--cache-dir", str(tmp_path)]
        cold = run_cli(capsys, argv)
        warm = run_cli(capsys, argv)
        assert "0 hits, 2 misses" in cold
        assert "2 hits, 0 misses" in warm

        def strip_cache_line(text: str) -> str:
            return "".join(
                line for line in text.splitlines(keepends=True)
                if not line.startswith("cache:")
            )

        assert strip_cache_line(cold) == strip_cache_line(warm) == golden(golden_name)


class TestReplayGolden:
    """``repro replay`` on the checked-in trace, against the stored golden.

    The trace (``stream_small.jsonl``) was recorded with ``repro stream``
    at pinned seeds (mmpp arrivals, 15% churn); its replay summary must stay
    byte-stable on the scalar path and byte-identical across engines (modulo
    the echoed engine token).
    """

    TRACE = str(GOLDEN_DIR / "stream_small.jsonl")

    def test_scalar_replay_matches_golden(self, capsys):
        output = run_cli(capsys, ["replay", "--trace", self.TRACE,
                                  "--engine", "scalar"])
        assert output == golden("replay_stream.txt")

    @pytest.mark.parametrize("engine", ["vectorized", "auto"])
    def test_fast_engines_match_golden_bytes(self, capsys, engine):
        output = run_cli(capsys, ["replay", "--trace", self.TRACE,
                                  "--engine", engine])
        normalized = output.replace(f"(engine={engine},", "(engine=scalar,", 1)
        assert normalized == golden("replay_stream.txt")

    def test_rerecord_is_byte_identical(self, capsys, tmp_path):
        out_path = tmp_path / "rerecorded.jsonl"
        run_cli(capsys, ["replay", "--trace", self.TRACE,
                         "--record-out", str(out_path)])
        assert out_path.read_bytes() == Path(self.TRACE).read_bytes()


class TestEngineNeutralRecipes:
    def test_regimes_output_identical_across_engines(self, capsys):
        # A cheap regimes run: the whole table must be engine-independent.
        args = ["regimes", "--trials", "2"]
        scalar = run_cli(capsys, args + ["--engine", "scalar"])
        vectorized = run_cli(capsys, args + ["--engine", "vectorized"])
        assert scalar == vectorized

    def test_tradeoff_output_identical_across_engines(self, capsys):
        args = ["tradeoff", "--n", "1024", "--trials", "2"]
        scalar = run_cli(capsys, args + ["--engine", "scalar"])
        vectorized = run_cli(capsys, args + ["--engine", "vectorized"])
        assert scalar == vectorized


class TestSchemesJsonGolden:
    """The machine-readable registry dump must stay byte-stable.

    Regenerate (only after intentionally changing the registry) with::

        PYTHONPATH=src python -m repro schemes --json \
            > tests/data/golden/schemes.json
    """

    def test_registry_dump_matches_golden(self, capsys):
        output = run_cli(capsys, ["schemes", "--json"])
        assert output == golden("schemes.json")

    def test_dump_is_valid_json_with_support_reasons(self, capsys):
        import json

        dump = json.loads(run_cli(capsys, ["schemes", "--json"]))
        assert dump["format"] == "repro-scheme-registry"
        assert dump["version"] == 1
        assert dump["count"] == len(dump["schemes"]) > 0
        by_name = {entry["name"]: entry for entry in dump["schemes"]}
        kd = by_name["kd_choice"]
        assert kd["vectorized"] and kd["vectorized_unsupported_reason"] is None
        assert kd["online"] and kd["online_unsupported_reason"] is None
        for entry in dump["schemes"]:
            # The dichotomy: support flag XOR a human-readable reason.
            assert entry["vectorized"] == (
                entry["vectorized_unsupported_reason"] is None
            )
            assert entry["online"] == (
                entry["online_unsupported_reason"] is None
            )


class TestWorkloadsJsonGolden:
    """The machine-readable workload-registry dump must stay byte-stable.

    Regenerate (only after intentionally changing the scenario library)
    with::

        PYTHONPATH=src python -m repro workloads --json \
            > tests/data/golden/workloads.json
    """

    def test_registry_dump_matches_golden(self, capsys):
        output = run_cli(capsys, ["workloads", "--json"])
        assert output == golden("workloads.json")

    def test_dump_is_valid_json_with_hook_flags(self, capsys):
        import json

        dump = json.loads(run_cli(capsys, ["workloads", "--json"]))
        assert dump["format"] == "repro-workload-registry"
        assert dump["version"] == 1
        workloads = dump["workloads"]
        assert set(workloads) >= {
            "uniform", "zipf_items", "adversarial_burst", "diurnal",
            "hetero_bins", "multi_tenant",
        }
        assert workloads["hetero_bins"]["binds_spec_params"]
        assert workloads["multi_tenant"]["tenant_labels"]
        assert workloads["uniform"]["substrate_arrivals"]
        for entry in workloads.values():
            assert isinstance(entry["params"], dict)
            assert entry["summary"]

    def test_table_lists_every_registered_workload(self, capsys):
        from repro.workloads import available_workloads

        output = run_cli(capsys, ["workloads"])
        for name in available_workloads():
            assert name in output


class TestTopologyJsonGolden:
    """The machine-readable topology-layout dump must stay byte-stable.

    Regenerate (only after intentionally changing the layout registry)
    with::

        PYTHONPATH=src python -m repro topology --json \
            > tests/data/golden/topology.json
    """

    def test_layout_dump_matches_golden(self, capsys):
        output = run_cli(capsys, ["topology", "--json"])
        assert output == golden("topology.json")

    def test_dump_is_valid_json_with_every_layout(self, capsys):
        import json

        from repro.topology import TOPOLOGY_LAYOUTS

        dump = json.loads(run_cli(capsys, ["topology", "--json"]))
        assert dump["format"] == "repro-topology-registry"
        assert dump["version"] == 1
        assert dump["count"] == len(dump["layouts"]) == len(TOPOLOGY_LAYOUTS)
        for name, entry in dump["layouts"].items():
            assert entry["name"] == name
            assert entry["zones"] >= 1 and entry["racks_per_zone"] >= 1
            assert set(entry["probe_costs"]) == {"rack", "zone", "cross"}

    def test_table_lists_every_registered_layout(self, capsys):
        from repro.topology import TOPOLOGY_LAYOUTS

        output = run_cli(capsys, ["topology"])
        for name in TOPOLOGY_LAYOUTS:
            assert name in output

    def test_validate_round_trips_a_saved_topology(self, capsys, tmp_path):
        from repro.topology import Topology, save_topology

        path = tmp_path / "topo.json"
        save_topology(path, Topology.grid(64, 2, 2))
        output = run_cli(capsys, ["topology", "--validate", str(path)])
        assert "valid" in output and "2 zones" in output

    def test_validate_rejects_a_corrupt_topology(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "repro-topology", "version": 1}')
        with pytest.raises(SystemExit, match="invalid topology"):
            main(["topology", "--validate", str(path)])
