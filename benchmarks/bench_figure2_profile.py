"""Bench: Figure 2 — sorted bin-load vector with the lower-bound landmarks.

Paper reference: Figure 2 (schematic sorted load vector used by the
lower-bound analysis, annotated at ``γ* = 4n/d_k`` and ``γ₀ = n/d``).

The bench measures the loads at both landmark ranks and checks the
decomposition the figure illustrates: the maximum load is at least
``B_{γ*}`` plus the load difference ``B_1 − B_{γ₀}`` accumulated above rank
``γ₀``, and for growing ``d_k`` the ``B_{γ*}`` term is non-trivial.
"""

from __future__ import annotations

from repro.analysis.asymptotics import d_k
from repro.experiments.load_profile import run_load_profile

PROFILE_N = 3 * 2 ** 14
CONFIGS = ((4, 8), (16, 17), (64, 65))


def test_figure2_sorted_profile(benchmark, run_once, bench_seed):
    result = run_once(
        run_load_profile, n=PROFILE_N, configurations=CONFIGS, seed=bench_seed
    )
    print()
    for series in result.series:
        decomposition = series.figure2_decomposition()
        print(
            f"(k={series.k}, d={series.d}) d_k={d_k(series.k, series.d):.1f}: "
            f"max load {series.max_load}, "
            f"gamma* = {series.gamma_star_:.1f} -> B = {series.load_at_gamma_star}, "
            f"gamma0 = {series.gamma0:.1f} -> B = {series.load_at_gamma0}, "
            f"B1 - B_gamma0 = {decomposition['B1_minus_Bgamma0']:.0f}"
        )
        benchmark.extra_info[f"k{series.k}_d{series.d}_max_load"] = series.max_load

    by_config = {(s.k, s.d): s for s in result.series}

    # For (4, 8) the ratio d_k = 2 puts gamma* = 2n beyond the last rank, so
    # the landmark is undefined — exactly why the paper only needs the
    # B_{gamma*} term when d_k grows.  For growing d_k the load at gamma* is
    # positive and increases with d_k (the lower-bound term of Theorem 6).
    assert by_config[(4, 8)].load_at_gamma_star is None
    assert by_config[(16, 17)].load_at_gamma_star >= 1
    assert by_config[(64, 65)].load_at_gamma_star >= by_config[(16, 17)].load_at_gamma_star

    # The maximum load dominates each of the two Figure 2 pieces.
    for series in result.series:
        decomposition = series.figure2_decomposition()
        assert series.max_load >= decomposition["B_gamma_star"]
        assert series.max_load >= decomposition["B1_minus_Bgamma0"]

    # The figure's overall message: as k approaches d the profile's head
    # rises — (64, 65) ends with a strictly larger maximum than (4, 8).
    assert by_config[(64, 65)].max_load > by_config[(4, 8)].max_load
