"""Bench: the Section 7 open question — heavily loaded case with d < 2k.

Theorem 2 proves the gap between maximum and average load stays
``Θ(ln ln n)`` for ``d ≥ 2k``; the paper explicitly leaves ``k ≤ d < 2k``
open.  This bench measures the gap for several ``d < 2k`` configurations as
the number of balls grows, next to a proven ``d ≥ 2k`` reference, giving the
conjecture-level answer a future analysis would have to match.
"""

from __future__ import annotations

from repro.experiments.extensions import open_question_table, run_open_question_heavy

OPEN_N = 1 << 11
LOAD_FACTORS = (1, 4, 16)


def test_open_question_heavy_d_less_than_2k(benchmark, run_once, bench_seed):
    points = run_once(
        run_open_question_heavy,
        n=OPEN_N,
        load_factors=LOAD_FACTORS,
        proven=((4, 8),),
        open_cases=((4, 6), (8, 9), (16, 17)),
        trials=3,
        seed=bench_seed,
    )
    print("\n" + open_question_table(points).to_text())

    by_config: dict = {}
    for point in points:
        by_config.setdefault((point.k, point.d), []).append(point)

    for (k, d), series in by_config.items():
        series.sort(key=lambda p: p.load_factor)
        gaps = [p.mean_gap for p in series]
        # Empirical answer to the open question: even for d < 2k the gap does
        # not grow with the load factor (16x more balls, same gap band).
        assert max(gaps) - min(gaps) <= 3.0, (k, d, gaps)
        benchmark.extra_info[f"k{k}_d{d}"] = [round(g, 2) for g in gaps]

    # The open cases have larger gaps than the proven d >= 2k reference (the
    # d_k term), but they remain bounded.
    reference = max(p.mean_gap for p in by_config[(4, 8)])
    worst_open = max(
        p.mean_gap for (k, d), series in by_config.items() if d < 2 * k for p in series
    )
    assert worst_open >= reference - 0.5
    assert worst_open <= reference + 6.0
