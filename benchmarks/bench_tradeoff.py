"""Bench: the maximum-load vs message-cost trade-off (Section 1.1).

Paper reference: the Section 1.1 discussion of the main result — with
``d = 2k`` and ``k = Θ(polylog n)`` the process reaches a constant maximum
load using 2n messages, and with ``d − k = Θ(ln n)``, ``k ≥ Θ(ln² n)`` it
reaches ``o(ln ln n)`` maximum load using ``(1 + o(1)) n`` messages — placed
against the single-choice, Greedy[d], (1+β) and adaptive comparators.
"""

from __future__ import annotations

from repro.experiments.tradeoff import run_tradeoff, tradeoff_table

TRADEOFF_N = 3 * 2 ** 13


def test_tradeoff_max_load_vs_messages(benchmark, run_once, bench_seed):
    points = run_once(run_tradeoff, n=TRADEOFF_N, trials=3, seed=bench_seed)
    print("\n" + tradeoff_table(points).to_text())

    by_scheme = {p.scheme: p for p in points}
    single = by_scheme["single-choice"]
    greedy2 = by_scheme["greedy[2]"]
    constant_load = next(p for name, p in by_scheme.items() if name.startswith("(k,2k)"))
    low_message = next(p for name, p in by_scheme.items() if "(k,k+ln n)" in name)
    storage_cfg = next(p for name, p in by_scheme.items() if "(k,k+1)" in name)

    for point in points:
        benchmark.extra_info[point.scheme] = (
            round(point.mean_max_load, 2),
            round(point.mean_messages_per_ball, 2),
        )

    # Headline claim 1: constant max load at ~2 messages per ball, matching
    # Greedy[2]'s cost but with a (weakly) better max load than single choice
    # and no worse than Greedy[2] + 1.
    assert abs(constant_load.mean_messages_per_ball - 2.0) <= 0.3
    assert constant_load.mean_max_load <= 3.0
    assert constant_load.mean_max_load <= greedy2.mean_max_load + 1.0

    # Headline claim 2: near-minimal message cost (close to 1 per ball) while
    # still beating single choice on the max load.
    assert low_message.mean_messages_per_ball <= 1.3
    assert low_message.mean_max_load < single.mean_max_load

    # Storage configuration (d = k+1): roughly half of two-choice's messages.
    assert storage_cfg.mean_messages_per_ball <= 0.65 * greedy2.mean_messages_per_ball
