"""Wall-clock benchmarks of the trial executor and the on-disk result cache.

The acceptance anchor of the execution layer: a multi-trial ``kd_choice``
batch (``n = 10^5``, 8 trials) must run >= 2x faster with 4 worker processes
than serially — while producing byte-identical per-trial seeds and metrics —
and a warm :class:`~repro.api.ResultStore` must answer the same batch
without executing the scheme at all.

On machines with fewer than 4 CPUs the parallel speedup assertion is
meaningless (there is nothing to fan out onto), so it is skipped and the
measured ratio is only attached to ``benchmark.extra_info``; the
equivalence checks always run.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.api import ResultStore, SchemeSpec, simulate_trials

#: The acceptance anchor: a Table-1-sized cell, fanned out over 8 trials.
PARALLEL_N = 100_000
PARALLEL_TRIALS = 8
PARALLEL_JOBS = 4

SPEC = SchemeSpec(
    scheme="kd_choice",
    params={"n_bins": PARALLEL_N, "k": 4, "d": 8},
    seed=0,
    engine="scalar",  # the scalar loop is the expensive, representative path
)

_CPUS = os.cpu_count() or 1


def _outcome_fingerprint(outcome):
    return [(trial.seed, sorted(trial.metrics.items())) for trial in outcome.trials]


def test_parallel_trials_speedup(benchmark):
    """4 workers must beat serial >= 2x on the anchor batch (given the CPUs)."""
    serial_start = time.perf_counter()
    serial = simulate_trials(SPEC, trials=PARALLEL_TRIALS, n_jobs=1)
    serial_elapsed = time.perf_counter() - serial_start

    parallel_start = time.perf_counter()
    parallel = benchmark.pedantic(
        simulate_trials,
        kwargs={"spec": SPEC, "trials": PARALLEL_TRIALS, "n_jobs": PARALLEL_JOBS},
        rounds=1,
        iterations=1,
    )
    parallel_elapsed = time.perf_counter() - parallel_start

    # Determinism contract first: parallel must be byte-identical to serial.
    assert _outcome_fingerprint(parallel) == _outcome_fingerprint(serial)

    speedup = serial_elapsed / max(parallel_elapsed, 1e-9)
    benchmark.extra_info["serial_seconds"] = round(serial_elapsed, 3)
    benchmark.extra_info["parallel_seconds"] = round(parallel_elapsed, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["cpus"] = _CPUS
    print(
        f"\nn={PARALLEL_N} trials={PARALLEL_TRIALS}: serial {serial_elapsed:.2f}s, "
        f"{PARALLEL_JOBS} workers {parallel_elapsed:.2f}s ({speedup:.2f}x, "
        f"{_CPUS} CPUs)"
    )
    if _CPUS < PARALLEL_JOBS:
        pytest.skip(
            f"only {_CPUS} CPU(s) available; {PARALLEL_JOBS}-worker speedup "
            f"is not measurable here (measured {speedup:.2f}x)"
        )
    assert speedup >= 2.0, (
        f"expected >= 2x speedup with {PARALLEL_JOBS} workers on {_CPUS} CPUs, "
        f"measured {speedup:.2f}x"
    )


def test_warm_cache_skips_execution(benchmark, tmp_path):
    """A warm ResultStore answers the whole batch from disk, much faster."""
    store = ResultStore(tmp_path)
    cold_start = time.perf_counter()
    cold = simulate_trials(SPEC, trials=PARALLEL_TRIALS, cache=store)
    cold_elapsed = time.perf_counter() - cold_start
    assert store.stats()["misses"] == PARALLEL_TRIALS

    warm_start = time.perf_counter()
    warm = benchmark.pedantic(
        simulate_trials,
        kwargs={"spec": SPEC, "trials": PARALLEL_TRIALS, "cache": store},
        rounds=1,
        iterations=1,
    )
    warm_elapsed = time.perf_counter() - warm_start

    assert store.stats()["hits"] == PARALLEL_TRIALS
    assert _outcome_fingerprint(warm) == _outcome_fingerprint(cold)
    speedup = cold_elapsed / max(warm_elapsed, 1e-9)
    benchmark.extra_info["cold_seconds"] = round(cold_elapsed, 3)
    benchmark.extra_info["warm_seconds"] = round(warm_elapsed, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print(
        f"\ncold {cold_elapsed:.2f}s, warm {warm_elapsed:.3f}s "
        f"({speedup:.0f}x from cache)"
    )
    # Reading 8 JSON entries must beat 8 full simulations by a wide margin.
    assert speedup >= 10.0


def test_parallel_and_cache_compose(tmp_path):
    """n_jobs and cache together: misses computed in parallel, then all hits."""
    store = ResultStore(tmp_path)
    first = simulate_trials(SPEC, trials=PARALLEL_TRIALS, n_jobs=2, cache=store)
    second = simulate_trials(SPEC, trials=PARALLEL_TRIALS, n_jobs=2, cache=store)
    assert store.stats() == {
        "hits": PARALLEL_TRIALS,
        "misses": PARALLEL_TRIALS,
        "stores": PARALLEL_TRIALS,
    }
    assert _outcome_fingerprint(first) == _outcome_fingerprint(second)
