"""Bench: ablation of the allocation policy (Section 7 future work).

Paper reference: the Section 7 remark that relaxing the multiplicity cap
("the less-loaded candidate bins can receive more balls regardless of how
many times those bins are sampled") should improve balance when ``k ≈ d``.
"""

from __future__ import annotations

from repro.experiments.ablation import ablation_table, run_policy_ablation

ABLATION_N = 3 * 2 ** 11
CONFIGS = ((2, 3), (8, 9), (32, 33), (8, 16))


def test_policy_ablation_strict_vs_greedy(benchmark, run_once, bench_seed):
    points = run_once(
        run_policy_ablation,
        n=ABLATION_N,
        configurations=CONFIGS,
        trials=5,
        seed=bench_seed,
    )
    print("\n" + ablation_table(points).to_text())

    by_config = {(p.k, p.d): p for p in points}
    for point in points:
        benchmark.extra_info[f"k{point.k}_d{point.d}"] = (
            round(point.strict_mean, 2),
            round(point.greedy_mean, 2),
        )

    # The greedy relaxation never hurts, and it helps most when k ≈ d with
    # large k (the case the paper points at).
    for point in points:
        assert point.greedy_mean <= point.strict_mean + 0.4, (point.k, point.d)
    assert by_config[(32, 33)].improvement >= by_config[(8, 16)].improvement
