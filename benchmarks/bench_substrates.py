"""Bench: substrate event-core throughput (cluster + storage fast engines).

Paper reference: Section 1.3 applies (k, d)-choice to cluster scheduling and
storage placement; checking the response-time/balance claims at realistic
scale needs million-task traces, which the reference object simulators
cannot sustain.  This bench pins the scale-out: the array event core and the
fast storage core must beat their reference engines by a configurable factor
while reproducing them bit for bit.

Environment knobs (for shared CI runners):

``BENCH_SUBSTRATES_TASKS``
    Cluster trace size in tasks (default 1_000_000).
``BENCH_SUBSTRATES_FILES``
    Storage population size in files (default 100_000).
``BENCH_SUBSTRATES_MIN_SPEEDUP``
    Speedup floor asserted for both cores (default 5.0; relax on noisy
    shared runners).

The module doubles as the ``BENCH_SUBSTRATES.json`` artifact writer
(shared version-2 envelope, see :mod:`bench_envelope`)::

    PYTHONPATH=src python benchmarks/bench_substrates.py --tasks 200000 \
        --files 20000 --output BENCH_SUBSTRATES.json
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from repro.api import SchemeSpec, simulate_trials
from repro.api.cache import ResultStore
from repro.cluster.schedulers import BatchSamplingScheduler
from repro.cluster.simulator import ClusterSimulator, simulate_cluster_fast
from repro.simulation.workloads import file_sizes, job_trace_arrays
from repro.storage.placement import KDChoicePlacement
from repro.storage.system import StorageSystem, simulate_storage_fast
from repro.simulation.workloads import file_population

N_TASKS = int(os.environ.get("BENCH_SUBSTRATES_TASKS", "1000000"))
N_FILES = int(os.environ.get("BENCH_SUBSTRATES_FILES", "100000"))
MIN_SPEEDUP = float(os.environ.get("BENCH_SUBSTRATES_MIN_SPEEDUP", "5.0"))

TASKS_PER_JOB = 4
N_WORKERS = 1024
N_SERVERS = 1024
REPLICAS = 3


def test_cluster_event_core_speedup(benchmark, run_once, bench_seed):
    """The array event core must be >= MIN_SPEEDUP x the reference engine
    on an N_TASKS-task trace, with a bit-identical report."""
    n_jobs = N_TASKS // TASKS_PER_JOB
    arrays = job_trace_arrays(
        n_jobs=n_jobs,
        arrival_rate=0.7 * N_WORKERS / TASKS_PER_JOB,
        tasks_per_job=TASKS_PER_JOB,
        seed=bench_seed,
    )

    start = time.perf_counter()
    fast_report = run_once(
        simulate_cluster_fast,
        N_WORKERS,
        BatchSamplingScheduler(),
        arrays,
        seed=bench_seed + 1,
    )
    fast_seconds = time.perf_counter() - start

    trace = arrays.to_trace()  # object materialization excluded from timing
    start = time.perf_counter()
    reference_report = ClusterSimulator(
        N_WORKERS, BatchSamplingScheduler(), seed=bench_seed + 1
    ).run(trace)
    reference_seconds = time.perf_counter() - start

    speedup = reference_seconds / fast_seconds
    benchmark.extra_info["tasks"] = N_TASKS
    benchmark.extra_info["fast_seconds"] = round(fast_seconds, 3)
    benchmark.extra_info["reference_seconds"] = round(reference_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print(
        f"\nevent core @ {N_TASKS} tasks: fast {fast_seconds:.2f}s, "
        f"reference {reference_seconds:.2f}s, speedup {speedup:.1f}x "
        f"(floor {MIN_SPEEDUP:g}x)"
    )

    assert reference_report == fast_report, "engines diverged"
    assert speedup >= MIN_SPEEDUP, (
        f"event core speedup {speedup:.2f}x below the {MIN_SPEEDUP:g}x floor"
    )


def test_storage_core_speedup(benchmark, run_once, bench_seed):
    """The fast storage core must be >= MIN_SPEEDUP x the reference system
    on an N_FILES-file population, with a bit-identical report."""
    sizes = file_sizes(N_FILES, seed=bench_seed)

    start = time.perf_counter()
    loads, fast_report = run_once(
        simulate_storage_fast,
        N_SERVERS,
        sizes,
        REPLICAS,
        KDChoicePlacement(extra_probes=1),
        seed=bench_seed + 1,
    )
    fast_seconds = time.perf_counter() - start

    population = file_population(N_FILES, replicas=REPLICAS, seed=bench_seed)
    system = StorageSystem(
        N_SERVERS, KDChoicePlacement(extra_probes=1), seed=bench_seed + 1
    )
    start = time.perf_counter()
    system.store_population(population)
    reference_report = system.report()
    reference_seconds = time.perf_counter() - start

    speedup = reference_seconds / fast_seconds
    benchmark.extra_info["files"] = N_FILES
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print(
        f"\nstorage core @ {N_FILES} files: fast {fast_seconds:.2f}s, "
        f"reference {reference_seconds:.2f}s, speedup {speedup:.1f}x "
        f"(floor {MIN_SPEEDUP:g}x)"
    )

    assert reference_report == fast_report, "engines diverged"
    assert np.array_equal(loads, system.load_vector())
    assert speedup >= MIN_SPEEDUP, (
        f"storage core speedup {speedup:.2f}x below the {MIN_SPEEDUP:g}x floor"
    )


def _measure_cluster_core(n_tasks: int, seed: int = 0) -> Dict[str, Any]:
    """Fast vs reference event-core throughput (reports must be identical)."""
    n_jobs = n_tasks // TASKS_PER_JOB
    arrays = job_trace_arrays(
        n_jobs=n_jobs,
        arrival_rate=0.7 * N_WORKERS / TASKS_PER_JOB,
        tasks_per_job=TASKS_PER_JOB,
        seed=seed,
    )
    start = time.perf_counter()
    fast_report = simulate_cluster_fast(
        N_WORKERS, BatchSamplingScheduler(), arrays, seed=seed + 1
    )
    fast_seconds = time.perf_counter() - start

    trace = arrays.to_trace()
    start = time.perf_counter()
    reference_report = ClusterSimulator(
        N_WORKERS, BatchSamplingScheduler(), seed=seed + 1
    ).run(trace)
    reference_seconds = time.perf_counter() - start
    if reference_report != fast_report:
        raise AssertionError("cluster event core diverged from the reference")
    return {
        "tasks": n_tasks,
        "fast_items_per_sec": int(n_tasks / fast_seconds),
        "reference_items_per_sec": int(n_tasks / reference_seconds),
        "speedup": round(reference_seconds / fast_seconds, 2),
    }


def _measure_storage_core(n_files: int, seed: int = 0) -> Dict[str, Any]:
    """Fast vs reference storage-core throughput (reports must be identical)."""
    sizes = file_sizes(n_files, seed=seed)
    start = time.perf_counter()
    loads, fast_report = simulate_storage_fast(
        N_SERVERS, sizes, REPLICAS, KDChoicePlacement(extra_probes=1),
        seed=seed + 1,
    )
    fast_seconds = time.perf_counter() - start

    population = file_population(n_files, replicas=REPLICAS, seed=seed)
    system = StorageSystem(
        N_SERVERS, KDChoicePlacement(extra_probes=1), seed=seed + 1
    )
    start = time.perf_counter()
    system.store_population(population)
    reference_report = system.report()
    reference_seconds = time.perf_counter() - start
    if reference_report != fast_report or not np.array_equal(
        loads, system.load_vector()
    ):
        raise AssertionError("storage core diverged from the reference")
    return {
        "files": n_files,
        "fast_items_per_sec": int(n_files / fast_seconds),
        "reference_items_per_sec": int(n_files / reference_seconds),
        "speedup": round(reference_seconds / fast_seconds, 2),
    }


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Write the BENCH_SUBSTRATES.json throughput snapshot"
    )
    parser.add_argument("--tasks", type=int, default=200_000)
    parser.add_argument("--files", type=int, default=20_000)
    parser.add_argument("--output", type=str, default="BENCH_SUBSTRATES.json")
    args = parser.parse_args(argv)

    from bench_envelope import write_envelope

    series = {
        "cluster_event_core": _measure_cluster_core(args.tasks),
        "storage_core": _measure_storage_core(args.files),
    }
    for name, line in series.items():
        print(
            f"{name:<20} fast {line['fast_items_per_sec']:>10,}/s  "
            f"reference {line['reference_items_per_sec']:>9,}/s  "
            f"({line['speedup']}x)"
        )
    output = Path(args.output)
    write_envelope(output, "BENCH_SUBSTRATES", args.tasks, series)
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())


def test_warm_cache_substrate_sweep(benchmark, run_once, bench_seed, tmp_path):
    """A warm-cache substrate sweep must answer entirely from cache
    ("N hits, 0 misses") with results identical to the cold serial run."""
    specs = [
        SchemeSpec(
            scheme="cluster_scheduling",
            params={"n_workers": 64, "n_jobs": 400, "tasks_per_job": k},
            seed=bench_seed,
            trials=3,
        )
        for k in (2, 4, 8)
    ] + [
        SchemeSpec(
            scheme="storage_placement",
            params={"n_servers": 256, "n_files": 2048, "replicas": r},
            seed=bench_seed,
            trials=3,
        )
        for r in (2, 3)
    ]

    cold_store = ResultStore(tmp_path)
    cold = [simulate_trials(spec, cache=cold_store) for spec in specs]
    assert cold_store.hits == 0

    warm_store = ResultStore(tmp_path)
    warm = run_once(
        lambda: [simulate_trials(spec, cache=warm_store) for spec in specs]
    )

    expected_hits = sum(spec.trials for spec in specs)
    print(
        f"\nwarm substrate sweep: {warm_store.hits} hits, "
        f"{warm_store.misses} misses (expected {expected_hits} hits)"
    )
    benchmark.extra_info["hits"] = warm_store.hits
    assert warm_store.hits == expected_hits
    assert warm_store.misses == 0
    for cold_outcome, warm_outcome in zip(cold, warm):
        assert [t.seed for t in warm_outcome.trials] == [
            t.seed for t in cold_outcome.trials
        ]
        assert [t.metrics for t in warm_outcome.trials] == [
            t.metrics for t in cold_outcome.trials
        ]
