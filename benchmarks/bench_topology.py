"""Topology benchmarks: flat parity and zone-aware routing economics.

Two acceptance anchors ride in this module:

1. **Flat parity is free.**  Under ``Topology.flat`` (one zone, one rack,
   zero cost) the topology-aware schemes must reproduce the paper's flat
   schemes bit for bit — the topology layer may cost accounting time but
   never drift.

2. **Zone routing trades nothing for locality.**  A ``topology`` router
   over a zoned shard pool must place a *lower* fraction of items outside
   their home zone than the flat ``two_choice`` router while sustaining at
   least ``BENCH_TOPOLOGY_MIN_RATE_RATIO`` (default 0.5x) of its
   placements/sec — i.e. locality comes from probe remapping, not from a
   slow path.

The module doubles as the ``BENCH_TOPOLOGY.json`` artifact writer::

    PYTHONPATH=src python benchmarks/bench_topology.py --items 100000 \
        --output BENCH_TOPOLOGY.json
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.api import SchemeSpec, simulate
from repro.serve import ShardPool
from repro.topology import Topology, run_locality_two_choice

ITEMS = int(os.environ.get("BENCH_TOPOLOGY_ITEMS", 100_000))
MIN_RATE_RATIO = float(os.environ.get("BENCH_TOPOLOGY_MIN_RATE_RATIO", 0.5))
SHARDS = 8
ZONES = 2
CHUNK = 4_096


def _spec(n_items: int) -> SchemeSpec:
    return SchemeSpec(
        scheme="two_choice",
        params={"n_bins": n_items, "n_balls": n_items},
        seed=0,
    )


def _assert_flat_parity() -> None:
    """Topology layer at zero cost reproduces the flat schemes bit for bit."""
    n_bins = 4_096
    flat = simulate(SchemeSpec(scheme="two_choice", params={"n_bins": n_bins}, seed=7))
    for bias in (0.0, 0.5, 1.0):
        local = run_locality_two_choice(
            n_bins, bias=bias, topology=Topology.flat(n_bins), seed=7
        )
        assert (local.loads == flat.loads).all(), (
            f"flat-topology locality_two_choice (bias={bias}) drifted from "
            f"two_choice"
        )


def _drive_pool(policy: str, items: int) -> Dict[str, Any]:
    """Stream ``items`` through a zoned thread pool; measure rate + locality.

    Home zones interleave with the decision index (the ``topology_aware``
    workload's convention), so the cross-zone placement fraction is
    computable for any router — the flat baseline included.
    """
    params = {"zones": ZONES} if policy == "topology" else {}
    shard_zone = np.arange(SHARDS, dtype=np.int64) % ZONES
    with ShardPool(
        _spec(items), SHARDS, policy=policy, mode="thread",
        policy_params=params,
    ) as pool:
        cross = 0
        decisions = 0
        start = time.perf_counter()
        remaining = items
        while remaining:
            take = min(CHUNK, remaining)
            shards, _ = pool.place_batch(take)
            homes = (np.arange(decisions, decisions + take)) % ZONES
            cross += int(np.count_nonzero(shard_zone[shards] != homes))
            decisions += take
            remaining -= take
        elapsed = time.perf_counter() - start
        placed = pool.placed
        summary = pool.summary()
    assert placed == items
    line: Dict[str, Any] = {
        "policy": policy,
        "shards": SHARDS,
        "zones": ZONES,
        "items_per_sec": int(items / elapsed),
        "cross_zone_fraction": round(cross / items, 4),
    }
    if "cross_routes" in summary:
        line["router_cross_routes"] = summary["cross_routes"]
        line["router_route_cost"] = summary["route_cost"]
    return line


def _compare(items: int) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    flat = _drive_pool("two_choice", items)
    zoned = _drive_pool("topology", items)
    assert zoned["cross_zone_fraction"] < flat["cross_zone_fraction"], (
        f"topology router placed {zoned['cross_zone_fraction']:.2%} of items "
        f"cross-zone — not below two_choice's {flat['cross_zone_fraction']:.2%}"
    )
    ratio = zoned["items_per_sec"] / max(flat["items_per_sec"], 1)
    assert ratio >= MIN_RATE_RATIO, (
        f"topology router sustained only {ratio:.2f}x of two_choice's "
        f"placements/sec (needs >= {MIN_RATE_RATIO}x)"
    )
    return flat, zoned


def test_flat_topology_is_parity_free():
    """Cheap bit-for-bit pin that runs everywhere."""
    _assert_flat_parity()


def test_topology_router_beats_two_choice_on_cross_zone_fraction():
    """The headline acceptance: locality without a throughput cliff."""
    _compare(items=40_000)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--items", type=int, default=ITEMS)
    parser.add_argument("--output", type=str, default="BENCH_TOPOLOGY.json")
    args = parser.parse_args(argv)

    _assert_flat_parity()
    flat, zoned = _compare(args.items)

    from bench_envelope import write_envelope

    print(
        f"two_choice  {flat['items_per_sec']:>10,}/s  "
        f"cross-zone {flat['cross_zone_fraction']:.2%}\n"
        f"topology    {zoned['items_per_sec']:>10,}/s  "
        f"cross-zone {zoned['cross_zone_fraction']:.2%}"
    )
    output = Path(args.output)
    write_envelope(
        output, "BENCH_TOPOLOGY", args.items,
        {"router_two_choice": flat, "router_topology": zoned},
    )
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
