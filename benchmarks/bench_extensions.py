"""Bench: extension experiments (weighted balls, stale information, churn,
exact validation).

These go beyond the paper's own evaluation (which covers Table 1 and the
analytical claims) and exercise the extension modules: weighted (k, d)-choice,
the parallel-rounds model with stale load snapshots, the dynamic
insert/delete system, and the exact-distribution validation of the simulator.
"""

from __future__ import annotations

from repro.experiments.extensions import (
    churn_table,
    exact_validation_table,
    run_churn_experiment,
    run_exact_validation,
    run_staleness_experiment,
    run_weighted_experiment,
    staleness_table,
    weighted_table,
)


def test_weighted_balls(benchmark, run_once, bench_seed):
    points = run_once(
        run_weighted_experiment,
        n=3 * 2 ** 10,
        configurations=((1, 2), (4, 8), (16, 17)),
        weight_distributions=("constant", "exponential", "pareto"),
        trials=3,
        seed=bench_seed,
    )
    print("\n" + weighted_table(points).to_text())
    by_key = {(p.k, p.d, p.weight_distribution): p for p in points}
    # Multiple choices keep the weighted gap bounded even under heavy tails,
    # and constant weights are never worse than Pareto weights.
    for k, d in ((1, 2), (4, 8)):
        assert (
            by_key[(k, d, "constant")].mean_weighted_gap
            <= by_key[(k, d, "pareto")].mean_weighted_gap + 0.5
        )
    assert by_key[(4, 8, "exponential")].mean_weighted_gap <= by_key[
        (1, 2, "exponential")
    ].mean_weighted_gap + 1.0
    benchmark.extra_info["points"] = len(points)


def test_stale_information(benchmark, run_once, bench_seed):
    points = run_once(
        run_staleness_experiment,
        n=3 * 2 ** 11,
        k=4,
        d=8,
        stale_rounds_values=(1, 4, 16, 64, 256),
        trials=3,
        seed=bench_seed,
    )
    print("\n" + staleness_table(points).to_text())
    fresh = points[0]
    most_stale = points[-1]
    # Staleness degrades the guarantee monotonically (in tendency) but the
    # fully fresh process keeps its small constant maximum load.
    assert fresh.mean_max_load <= 3.0
    assert most_stale.mean_max_load >= fresh.mean_max_load
    benchmark.extra_info["fresh"] = fresh.mean_max_load
    benchmark.extra_info["stale_256"] = most_stale.mean_max_load


def test_dynamic_churn(benchmark, run_once, bench_seed):
    points = run_once(
        run_churn_experiment,
        n=512,
        configurations=((1, 1), (1, 2), (4, 8)),
        rounds=2048,
        trials=2,
        seed=bench_seed,
    )
    print("\n" + churn_table(points).to_text())
    by_config = {(p.k, p.d): p for p in points}
    # The dynamic analogue of the power of choices: probing beats random
    # placement on the steady-state gap, and (4, 8) is at least as good as
    # (1, 2).
    assert by_config[(1, 2)].steady_gap <= by_config[(1, 1)].steady_gap + 0.25
    assert by_config[(4, 8)].steady_gap <= by_config[(1, 2)].steady_gap + 0.5
    for point in points:
        assert point.final_balls == 512
    benchmark.extra_info["gaps"] = {
        f"k{p.k}_d{p.d}": round(p.steady_gap, 2) for p in points
    }


def test_exact_validation(benchmark, run_once, bench_seed):
    points = run_once(
        run_exact_validation,
        instances=((4, 1, 2), (4, 2, 3), (5, 2, 4), (6, 3, 4)),
        trials=4000,
        seed=bench_seed,
    )
    print("\n" + exact_validation_table(points).to_text())
    for point in points:
        assert point.total_variation < 0.05
        assert abs(point.exact_expected_max - point.empirical_expected_max) < 0.1
    benchmark.extra_info["max_tv"] = max(p.total_variation for p in points)
