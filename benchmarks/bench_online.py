"""Streaming allocator benchmarks: chunked ingestion vs the scalar loop.

The acceptance anchor of the online subsystem: at ``n = 10^6`` items
(``BENCH_ONLINE_ITEMS`` scales it down for shared CI runners),
``place_batch`` through the batch kernels must sustain at least
``BENCH_ONLINE_MIN_SPEEDUP`` (default 3x) the throughput of the scalar
``place()`` loop — and both ingestion modes are asserted to produce
bit-identical loads to the batch ``simulate()`` of the same spec, so the
speedup is never bought with drift.

A second check pins streaming-vs-batch parity cheaply for every
``online=``-capable scheme family at a smaller size.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.api import REGISTRY, SchemeSpec, get_scheme, simulate
from repro.online import OnlineAllocator

#: Problem size of the headline throughput comparison.
ITEMS = int(os.environ.get("BENCH_ONLINE_ITEMS", 1_000_000))
MIN_SPEEDUP = float(os.environ.get("BENCH_ONLINE_MIN_SPEEDUP", 3.0))

KD_PARAMS = {"k": 4, "d": 8}


def _spec(n_items: int, engine: str) -> SchemeSpec:
    return SchemeSpec(
        scheme="kd_choice",
        params={"n_bins": n_items, "n_balls": n_items, **KD_PARAMS},
        seed=0,
        engine=engine,
    )


def _time_scalar_place_loop(n_items: int) -> "tuple[float, np.ndarray]":
    allocator = OnlineAllocator(_spec(n_items, "scalar"))
    place = allocator.place
    start = time.perf_counter()
    for _ in range(n_items):
        place()
    return time.perf_counter() - start, allocator.loads


def _time_place_batch(n_items: int, chunk: int) -> "tuple[float, np.ndarray]":
    allocator = OnlineAllocator(_spec(n_items, "auto"))
    start = time.perf_counter()
    remaining = n_items
    while remaining:
        take = min(chunk, remaining)
        allocator.place_batch(take)
        remaining -= take
    return time.perf_counter() - start, allocator.loads


def test_place_batch_speedup_over_scalar_place_loop(benchmark):
    """``place_batch`` must beat the scalar ``place()`` loop >= 3x at n=1e6.

    Both ingestion paths stream the full ``ITEMS`` over the same bin count
    (measuring them at different sizes would skew the comparison — gather
    locality degrades with ``n_bins`` for both), and both are asserted equal
    to the batch engine first, so the two sides time the same computation.
    """
    batch_reference = simulate(_spec(ITEMS, "scalar"))
    scalar_time, scalar_loads = _time_scalar_place_loop(ITEMS)
    assert np.array_equal(scalar_loads, batch_reference.loads)

    stream_time, stream_loads = _time_place_batch(ITEMS, chunk=16_384)
    assert np.array_equal(stream_loads, batch_reference.loads)

    scalar_rate = ITEMS / scalar_time
    stream_rate = ITEMS / stream_time
    speedup = stream_rate / scalar_rate
    benchmark.extra_info["items"] = ITEMS
    benchmark.extra_info["scalar_items_per_sec"] = int(scalar_rate)
    benchmark.extra_info["place_batch_items_per_sec"] = int(stream_rate)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark(lambda: _time_place_batch(min(ITEMS, 250_000), chunk=16_384))
    assert speedup >= MIN_SPEEDUP, (
        f"place_batch only {speedup:.2f}x the scalar place loop "
        f"({stream_rate:,.0f} vs {scalar_rate:,.0f} items/sec; "
        f"needs >= {MIN_SPEEDUP}x)"
    )


ONLINE_PARITY_CASES = [
    ("kd_choice", {"n_bins": 4096, "k": 4, "d": 8, "n_balls": 8192}),
    ("d_choice", {"n_bins": 4096, "d": 3}),
    ("two_choice", {"n_bins": 4096}),
    ("single_choice", {"n_bins": 4096}),
    ("batch_random", {"n_bins": 4096, "k": 8}),
    ("weighted_kd_choice", {"n_bins": 2048, "k": 4, "d": 8}),
    ("stale_kd_choice", {"n_bins": 2048, "k": 2, "d": 5, "stale_rounds": 8}),
    ("one_plus_beta", {"n_bins": 4096, "beta": 0.5}),
    ("always_go_left", {"n_bins": 4096, "d": 4}),
    ("threshold_adaptive", {"n_bins": 4096}),
    ("two_phase_adaptive", {"n_bins": 4096}),
    ("greedy_kd_choice", {"n_bins": 2048, "k": 2, "d": 5}),
    ("serialized_kd_choice", {"n_bins": 2048, "k": 4, "d": 8}),
]


@pytest.mark.parametrize(
    "scheme,params", ONLINE_PARITY_CASES, ids=[c[0] for c in ONLINE_PARITY_CASES]
)
def test_streaming_matches_batch(scheme, params):
    """Every online scheme's stream equals its batch run (loads + stream)."""
    n_items = params.get("n_balls", params["n_bins"])
    a, b = np.random.default_rng(1), np.random.default_rng(1)
    batch = simulate(
        SchemeSpec(scheme=scheme, params=params, rng=a, engine="scalar")
    )
    allocator = OnlineAllocator(SchemeSpec(scheme=scheme, params=params, rng=b))
    allocator.place_batch(n_items)
    assert np.array_equal(allocator.loads, batch.loads)
    assert a.bit_generator.state == b.bit_generator.state


def test_parity_cases_cover_every_online_scheme():
    """The parity list above must not silently lag the registry."""
    covered = {scheme for scheme, _ in ONLINE_PARITY_CASES}
    online = {
        name for name in REGISTRY.names() if get_scheme(name).online is not None
    }
    assert covered == online, (
        f"parity cases out of sync with the registry: "
        f"missing {sorted(online - covered)}, stale {sorted(covered - online)}"
    )
