"""The one ``BENCH_*.json`` envelope every artifact writer emits.

Version 2 unifies the snapshot schema across ``bench_report.py`` (online +
core), ``bench_serve.py`` and ``bench_substrates.py``::

    {
      "artifact":  "BENCH_<NAME>",
      "version":   2,
      "collected": {"<sibling BENCH_*.json>": {...}},   # trajectory fold-in
      "cpus":      <os.cpu_count()>,
      "python":    "<platform.python_version()>",
      "numpy":     "<np.__version__>",
      "items":     <workload size>,
      "series":    {"<name>": {... "*items_per_sec": <rate> ...}}
    }

``repro bench --compare`` flattens every numeric ``*items_per_sec`` leaf to
a dotted path, so any pair of snapshots — including a version-1 baseline
against a version-2 run — gates the same way.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from typing import Any, Dict

import numpy as np

ENVELOPE_VERSION = 2


def collect_existing(output: Path) -> Dict[str, Any]:
    """Sibling ``BENCH_*.json`` snapshots in the working directory.

    Folded into the artifact under ``"collected"`` so each run carries the
    full throughput trajectory; the output file itself is excluded.
    """
    collected: Dict[str, Any] = {}
    for path in sorted(Path(".").glob("BENCH_*.json")):
        if path.resolve() == output.resolve():
            continue
        try:
            collected[path.name] = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            collected[path.name] = {"error": "unreadable"}
    return collected


def write_envelope(
    output: Path,
    artifact: str,
    items: int,
    series: Dict[str, Dict[str, Any]],
    **extra: Any,
) -> Dict[str, Any]:
    """Write one version-2 envelope to ``output``; return the payload.

    ``extra`` keys (e.g. ``compiled_backend``) land at the top level next
    to the standard fields — they are annotations, not rate series.
    """
    report: Dict[str, Any] = {
        "artifact": artifact,
        "version": ENVELOPE_VERSION,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": os.cpu_count() or 1,
        "items": items,
        "series": {name: dict(line) for name, line in series.items()},
    }
    report.update(extra)
    report["collected"] = collect_existing(output)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report
