"""Bench: Figure 1 — sorted bin-load vector with the upper-bound landmark β₀.

Paper reference: Figure 1 (schematic sorted load vector used by the
upper-bound analysis, split at ``β₀ = n/(6 d_k)``).

The bench measures the real sorted load profile of two representative
configurations — (4, 8), the ``d_k = O(1)`` setting, and (16, 17), the
growing-``d_k`` setting — and reports the loads at rank β₀ together with the
Figure 1 decomposition ``M = B_{β₀} + (B_1 − B_{β₀})``.
"""

from __future__ import annotations

from repro.experiments.load_profile import run_load_profile

PROFILE_N = 3 * 2 ** 14
CONFIGS = ((4, 8), (16, 17))


def test_figure1_sorted_profile(benchmark, run_once, bench_seed):
    result = run_once(
        run_load_profile, n=PROFILE_N, configurations=CONFIGS, seed=bench_seed
    )
    print()
    for series in result.series:
        decomposition = series.figure1_decomposition()
        print(
            f"(k={series.k}, d={series.d}): max load {series.max_load}, "
            f"beta0 = {series.beta0:.1f}, B_beta0 = {series.load_at_beta0}, "
            f"B1 - B_beta0 = {decomposition['B1_minus_Bbeta0']:.0f}"
        )
        print(f"  profile (rank, load): {series.profile_points[:12]} ...")
        benchmark.extra_info[f"k{series.k}_d{series.d}_max_load"] = series.max_load

    # Shape checks: the profile is flat over most of its range (Figure 1's
    # plateau) and B_{β₀} is a small constant.
    for series in result.series:
        assert series.load_at_beta0 is not None
        assert series.load_at_beta0 <= 4
        assert series.max_load >= series.load_at_beta0
        # Deep tail: the median bin holds at most the average (1 ball).
        mid_rank_loads = [load for rank, load in series.profile_points if rank > PROFILE_N // 2]
        assert all(load <= 2 for load in mid_rank_loads)
