"""Bench: cluster scheduling application (Section 1.3, Sparrow-style).

Paper reference: the Section 1.3 argument that per-task d-choice degrades as
a job's parallelism ``k`` grows (one straggler task delays the whole job),
while sharing one probe wave across the job — (k, d)-choice / batch sampling
— keeps response times low at the same per-task probe budget.
"""

from __future__ import annotations

from repro.experiments.applications import run_scheduling_experiment, scheduling_table

# 256 workers so that even the k = 64 jobs can issue 2k = 128 distinct-ish
# probes; with k equal to the cluster size batch sampling degenerates to
# random placement (the probe count is clamped to the number of workers).
N_WORKERS = 256
TASKS_PER_JOB = (4, 16, 64)
N_JOBS = 300


def test_cluster_scheduling_response_times(benchmark, run_once, bench_seed):
    comparisons = run_once(
        run_scheduling_experiment,
        n_workers=N_WORKERS,
        tasks_per_job_values=TASKS_PER_JOB,
        n_jobs=N_JOBS,
        utilization=0.7,
        probe_ratio=2.0,
        seed=bench_seed,
    )
    print("\n" + scheduling_table(comparisons).to_text())

    for comparison in comparisons:
        reports = comparison.reports
        per_task = next(v for name, v in reports.items() if "per-task" in name)
        batch = next(v for name, v in reports.items() if name.startswith("batch"))
        random_sched = reports["random"]
        late = next(v for name, v in reports.items() if name.startswith("late-binding"))
        k = comparison.tasks_per_job
        benchmark.extra_info[f"k={k}"] = {
            "random": round(random_sched.mean_response, 2),
            "per_task": round(per_task.mean_response, 2),
            "batch": round(batch.mean_response, 2),
            "late_binding": round(late.mean_response, 2),
        }

        # Probe-based schedulers beat random placement.
        assert per_task.mean_response <= random_sched.mean_response * 1.05
        assert batch.mean_response <= random_sched.mean_response * 1.05
        # Batch sampling matches per-task probing's message cost exactly
        # (probe_ratio * tasks) and does not lose on response time.
        assert batch.messages_per_task <= per_task.messages_per_task + 1e-9
        assert batch.mean_response <= per_task.mean_response * 1.15
        # Late binding (the extension) is at least as good as batch sampling.
        assert late.mean_response <= batch.mean_response * 1.05

    # The advantage of sharing probes grows with parallelism: at k = 64 the
    # batch scheduler's p99 is no worse than per-task's.
    largest = comparisons[-1]
    per_task = next(v for name, v in largest.reports.items() if "per-task" in name)
    batch = next(v for name, v in largest.reports.items() if name.startswith("batch"))
    assert batch.p99_response <= per_task.p99_response * 1.10
