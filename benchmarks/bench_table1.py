"""Bench: Table 1 — maximum load of (k, d)-choice over the (k, d) grid.

Paper reference: Table 1 (n = 3·2^16, 10 trials per cell).

* ``test_table1_scaled``     — routine run at n = 3·2^12 with a representative
  subset of rows; finishes in seconds and preserves the qualitative shape.
* ``test_table1_full_paper_scale`` — the full grid at the paper's n (marked
  ``slow``; several minutes).
"""

from __future__ import annotations

import pytest

from repro.experiments.table1 import (
    PAPER_TABLE1,
    TABLE1_D_VALUES,
    TABLE1_K_VALUES,
    TABLE1_N,
    run_table1,
)

SCALED_N = 3 * 2 ** 12
SCALED_K = (1, 2, 4, 8, 16, 64)
SCALED_D = (1, 2, 3, 5, 9, 17, 65)


def _compare_with_paper(result):
    """Annotate each reproduced cell with the paper's reported values."""
    rows = []
    for (k, d), cell in sorted(result.cells.items()):
        paper = PAPER_TABLE1.get((k, d))
        rows.append(
            {
                "k": k,
                "d": d,
                "measured": cell.text,
                "paper(n=3*2^16)": ", ".join(map(str, paper)) if paper else "n/a",
            }
        )
    return rows


def test_table1_scaled(benchmark, run_once, bench_seed):
    result = run_once(
        run_table1,
        n=SCALED_N,
        trials=3,
        seed=bench_seed,
        k_values=SCALED_K,
        d_values=SCALED_D,
    )
    rows = _compare_with_paper(result)
    benchmark.extra_info["n"] = SCALED_N
    benchmark.extra_info["cells"] = len(rows)
    print("\n" + result.to_text())

    # Shape checks against the paper's grid: d >= 5 columns stay at 2 for
    # small k, and the near-diagonal cells are the worst in each row.
    assert max(result.cells[(1, 5)].max_loads) <= 3
    assert max(result.cells[(2, 9)].max_loads) <= 2
    assert max(result.cells[(8, 9)].max_loads) >= max(result.cells[(8, 17)].max_loads)
    assert max(result.cells[(1, 1)].max_loads) > max(result.cells[(1, 2)].max_loads)


@pytest.mark.slow
def test_table1_full_paper_scale(benchmark, run_once, bench_seed):
    result = run_once(
        run_table1,
        n=TABLE1_N,
        trials=10,
        seed=bench_seed,
        k_values=TABLE1_K_VALUES,
        d_values=TABLE1_D_VALUES,
    )
    print("\n" + result.to_text())
    benchmark.extra_info["n"] = TABLE1_N

    # The headline anchors of the paper's table.
    assert max(result.cells[(1, 2)].max_loads) <= 4          # two-choice: 3, 4
    assert max(result.cells[(1, 1)].max_loads) >= 6          # single-choice: 7-9
    assert max(result.cells[(128, 193)].max_loads) <= 3      # matches (1,193)
    assert max(result.cells[(8, 9)].max_loads) <= 5          # close to two-choice
