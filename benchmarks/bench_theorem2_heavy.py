"""Bench: Theorem 2 — the heavily loaded case (m > n balls, d ≥ 2k).

Paper reference: Theorem 2.  The claim: for ``d ≥ 2k`` the gap between the
maximum and the average load stays ``Θ(ln ln n)`` — independent of the number
of balls — because (k, d)-choice is sandwiched between ``A(1, d−k+1)`` and
``A(1, ⌊d/k⌋)``.
"""

from __future__ import annotations

from repro.experiments.heavy import heavy_table, run_heavy_case

HEAVY_N = 1 << 12
LOAD_FACTORS = (1, 2, 4, 8)
CONFIGS = ((2, 4), (4, 8), (8, 16))


def test_theorem2_heavy_case_gap(benchmark, run_once, bench_seed):
    points = run_once(
        run_heavy_case,
        n=HEAVY_N,
        load_factors=LOAD_FACTORS,
        configurations=CONFIGS,
        trials=3,
        seed=bench_seed,
    )
    print("\n" + heavy_table(points).to_text())

    by_config = {}
    for point in points:
        by_config.setdefault((point.k, point.d), []).append(point)

    for (k, d), series in by_config.items():
        series.sort(key=lambda p: p.load_factor)
        gaps = [p.mean_gap for p in series]
        # The gap must not grow with the load factor: it stays within a small
        # additive band while the average load grows 8x.
        assert max(gaps) - min(gaps) <= 2.5, (k, d, gaps)
        # The measured gap respects the sandwich: no larger than the
        # empirical gap of A(1, floor(d/k)) plus slack.
        heaviest = series[-1]
        assert heaviest.mean_gap <= heaviest.sandwich_upper_gap + 1.5
        benchmark.extra_info[f"k{k}_d{d}_gap_at_8x"] = heaviest.mean_gap
