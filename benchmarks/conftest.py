"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper (see DESIGN.md's
per-experiment index).  Each bench both:

* times the experiment via ``pytest-benchmark`` (one round — these are
  experiments, not micro-benchmarks), and
* attaches the regenerated rows/series to ``benchmark.extra_info`` and prints
  them, so running ``pytest benchmarks/ --benchmark-only -s`` reproduces the
  paper's artefacts directly in the terminal.

Scaled-down problem sizes are used by default so the whole harness finishes
in a few minutes; the paper-scale variants are marked ``slow`` and can be
selected with ``-m slow``.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


@pytest.fixture
def bench_seed() -> int:
    """Root seed shared by the benchmark experiments."""
    return 20110606  # PODC 2011
