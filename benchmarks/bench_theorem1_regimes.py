"""Bench: Theorem 1 regimes — maximum-load scaling vs the closed-form bounds.

Paper reference: Theorem 1 / Section 1.1 discussion (there is no numbered
figure; the claim is the centrepiece of the evaluation).  The bench sweeps
``n`` for one configuration per regime and prints measured maximum loads next
to the predicted leading terms, so the growth shapes can be compared.
"""

from __future__ import annotations

from repro.experiments.regimes import DEFAULT_CONFIGS, regime_table, run_regime_scaling

N_VALUES = (1 << 10, 1 << 12, 1 << 14)


def test_theorem1_regime_scaling(benchmark, run_once, bench_seed):
    points = run_once(
        run_regime_scaling,
        n_values=N_VALUES,
        configs=DEFAULT_CONFIGS,
        trials=3,
        seed=bench_seed,
    )
    print("\n" + regime_table(points).to_text())

    by_config = {}
    for point in points:
        by_config.setdefault(point.config, []).append(point)

    # Single choice grows noticeably with n; the d_k = O(1) configurations
    # barely move (double-logarithmic growth).
    single = sorted(by_config["single-choice (k=d=1)"], key=lambda p: p.n)
    assert single[-1].mean_max_load >= single[0].mean_max_load
    constant_regime = sorted(
        by_config["(k,2k), k=ln n  [d_k=2]"], key=lambda p: p.n
    )
    assert constant_regime[-1].mean_max_load - constant_regime[0].mean_max_load <= 1.0

    # At the largest n, the regime ordering matches the theory: the d_k = 2
    # configurations beat single choice, and (k, k+1) with k = sqrt(n) falls
    # in between.
    largest = {config: max(pts, key=lambda p: p.n) for config, pts in by_config.items()}
    single_load = largest["single-choice (k=d=1)"].mean_max_load
    wide_load = largest["(k,2k), k=ln n  [d_k=2]"].mean_max_load
    tight_load = largest["(k,k+1), k=sqrt n  [d_k→∞]"].mean_max_load
    assert wide_load < single_load
    assert wide_load <= tight_load <= single_load + 0.5

    for point in points:
        benchmark.extra_info[f"{point.config}@{point.n}"] = point.mean_max_load
