"""Shard-pool scaling benchmarks: aggregate placements/sec, 4 shards vs 1.

The acceptance anchor of the serve subsystem: with four process-mode
shards on a machine with at least four CPUs, the pool must sustain at
least ``BENCH_SERVE_MIN_SPEEDUP`` (default 2x) the aggregate
``place_batch`` throughput of a single-shard pool over the same item
count (``BENCH_SERVE_ITEMS`` scales the workload down for shared CI
runners).  The floor is measured with the ``round_robin`` policy — its
routing is vectorized, so the comparison times the shards, not the
router — and the paper's ``two_choice`` policy is reported alongside as
extra info.

As everywhere else in this harness, the speedup is never bought with
drift: a parity check first asserts that every shard of a pooled run is
bit-identical to a standalone ``OnlineAllocator`` fed that shard's
subsequence.

The module doubles as the ``BENCH_SERVE.json`` artifact writer::

    PYTHONPATH=src python benchmarks/bench_serve.py --items 200000 \
        --output BENCH_SERVE.json
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np
import pytest

from repro.api import SchemeSpec
from repro.online import OnlineAllocator
from repro.serve import ShardPool

#: Problem size of the headline scaling comparison.
ITEMS = int(os.environ.get("BENCH_SERVE_ITEMS", 400_000))
MIN_SPEEDUP = float(os.environ.get("BENCH_SERVE_MIN_SPEEDUP", 2.0))
SHARDS = 4
CHUNK = 16_384

KD_PARAMS = {"k": 4, "d": 8}


def _spec(n_items: int) -> SchemeSpec:
    return SchemeSpec(
        scheme="kd_choice",
        params={"n_bins": n_items, "n_balls": n_items, **KD_PARAMS},
        seed=0,
    )


def _time_pool(
    n_shards: int, items: int, policy: str = "round_robin"
) -> Tuple[float, int]:
    """Stream ``items`` through a process-mode pool in CHUNK-sized windows.

    Pool construction (worker spawn) is excluded from the timing — the
    comparison is sustained throughput, not startup cost.
    """
    with ShardPool(_spec(items), n_shards, policy=policy, mode="process") as pool:
        start = time.perf_counter()
        remaining = items
        while remaining:
            take = min(CHUNK, remaining)
            pool.place_batch(take)
            remaining -= take
        elapsed = time.perf_counter() - start
        placed = pool.placed
    return elapsed, placed


def _assert_pool_matches_standalone(items: int = 20_000) -> None:
    """Every shard of a pooled run equals its standalone twin, bit for bit."""
    with ShardPool(
        _spec(items), SHARDS, policy="round_robin", mode="thread"
    ) as pool:
        shards, bins = pool.place_batch(items)
        for shard_index in range(SHARDS):
            subsequence = np.flatnonzero(shards == shard_index)
            standalone = OnlineAllocator(pool.shard_specs[shard_index])
            expected = standalone.place_batch(len(subsequence))
            assert np.array_equal(bins[subsequence], expected), (
                f"shard {shard_index} diverged from its standalone twin"
            )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < SHARDS,
    reason=f"shard scaling needs >= {SHARDS} CPUs, "
    f"got {os.cpu_count() or 1}",
)
def test_four_shards_beat_one_shard(benchmark):
    """4 process shards must sustain >= 2x one shard's placements/sec.

    Both sides stream the same total item count through the same chunk
    schedule; only the shard count differs.  The parity assertion runs
    first so the timed runs are known drift-free by construction.
    """
    _assert_pool_matches_standalone()

    single_time, single_placed = _time_pool(1, ITEMS)
    multi_time, multi_placed = _time_pool(SHARDS, ITEMS)
    assert single_placed == multi_placed == ITEMS

    single_rate = ITEMS / single_time
    multi_rate = ITEMS / multi_time
    speedup = multi_rate / single_rate
    benchmark.extra_info["items"] = ITEMS
    benchmark.extra_info["cpus"] = os.cpu_count()
    benchmark.extra_info["single_shard_items_per_sec"] = int(single_rate)
    benchmark.extra_info[f"{SHARDS}_shard_items_per_sec"] = int(multi_rate)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark(lambda: _time_pool(SHARDS, min(ITEMS, 100_000)))
    assert speedup >= MIN_SPEEDUP, (
        f"{SHARDS} shards only {speedup:.2f}x one shard "
        f"({multi_rate:,.0f} vs {single_rate:,.0f} placements/sec; "
        f"needs >= {MIN_SPEEDUP}x)"
    )


def test_pooled_placements_are_drift_free():
    """Cheap standalone-parity pin that runs everywhere, CPUs regardless."""
    _assert_pool_matches_standalone(items=8_000)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--items", type=int, default=200_000)
    parser.add_argument("--output", type=str, default="BENCH_SERVE.json")
    args = parser.parse_args(argv)

    _assert_pool_matches_standalone()
    single_time, _ = _time_pool(1, args.items)
    multi_time, _ = _time_pool(SHARDS, args.items)
    two_choice_time, _ = _time_pool(SHARDS, args.items, policy="two_choice")

    from bench_envelope import write_envelope

    single_rate = int(args.items / single_time)
    multi_rate = int(args.items / multi_time)
    cpus = os.cpu_count() or 1
    line: Dict[str, Any] = {
        "shards": SHARDS,
        "policy": "round_robin",
        "single_shard_items_per_sec": single_rate,
        "multi_shard_items_per_sec": multi_rate,
        "two_choice_multi_shard_items_per_sec": int(
            args.items / two_choice_time
        ),
    }
    # A speedup number recorded on a machine with fewer CPUs than shards is
    # noise (the shards time-slice one core), so the snapshot says so
    # explicitly instead of committing a misleading sub-1x figure.
    if cpus >= SHARDS:
        line["speedup"] = round(multi_rate / single_rate, 2)
    else:
        line["speedup"] = None
        line["speedup_note"] = (
            f"machine has {cpus} CPU(s) < {SHARDS} shards; shard scaling "
            f"is not measurable here and the >= {MIN_SPEEDUP}x floor is "
            f"skipped (see test_four_shards_beat_one_shard)"
        )
    speedup_text = (
        f"{line['speedup']}x" if line["speedup"] is not None
        else f"speedup n/a, {cpus} CPU(s) < {SHARDS} shards"
    )
    print(
        f"cpus: {cpus}\n"
        f"1 shard  {single_rate:>10,}/s\n"
        f"{SHARDS} shards {multi_rate:>10,}/s  "
        f"({speedup_text}, round_robin; "
        f"{line['two_choice_multi_shard_items_per_sec']:,}/s two_choice)"
    )
    output = Path(args.output)
    write_envelope(output, "BENCH_SERVE", args.items, {"shard_pool": line})
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
