"""Micro-benchmarks of the core allocation loop.

These are conventional timing benchmarks (multiple rounds) rather than
experiment reproductions: they track the throughput of the (k, d)-choice
inner loop and the vectorized single-choice baseline so performance
regressions in the substrate are visible.
"""

from __future__ import annotations

import time

import pytest

from repro.core.baselines import run_single_choice
from repro.core.process import run_kd_choice
from repro.core.vectorized import run_kd_choice_vectorized

MICRO_N = 1 << 14

#: Problem size of the scalar-vs-vectorized engine comparison.
ENGINE_N = 100_000


@pytest.mark.parametrize("k,d", [(1, 2), (4, 8), (16, 17), (64, 128)])
def test_throughput_kd_choice(benchmark, k, d):
    result = benchmark(run_kd_choice, n_bins=MICRO_N, k=k, d=d, seed=0)
    assert result.total_balls_check()
    benchmark.extra_info["balls_placed"] = MICRO_N
    benchmark.extra_info["max_load"] = result.max_load


def test_throughput_single_choice_vectorized(benchmark):
    result = benchmark(run_single_choice, MICRO_N, seed=0)
    assert result.total_balls_check()
    benchmark.extra_info["balls_placed"] = MICRO_N


def test_throughput_heavy_load(benchmark):
    result = benchmark(
        run_kd_choice, n_bins=MICRO_N // 4, k=4, d=8, n_balls=MICRO_N, seed=0
    )
    assert int(result.loads.sum()) == MICRO_N
    benchmark.extra_info["balls_placed"] = MICRO_N


@pytest.mark.parametrize("k,d", [(1, 2), (4, 8), (16, 17)])
def test_throughput_kd_choice_vectorized(benchmark, k, d):
    result = benchmark(run_kd_choice_vectorized, n_bins=MICRO_N, k=k, d=d, seed=0)
    assert result.total_balls_check()
    benchmark.extra_info["balls_placed"] = MICRO_N
    benchmark.extra_info["max_load"] = result.max_load


def test_vectorized_speedup_over_scalar(benchmark):
    """The vectorized engine must beat the scalar loop >= 3x on the hot case.

    ``n = 10^5, k = 4, d = 8`` is the acceptance anchor: both engines run the
    identical workload (and are checked to produce identical loads), and the
    measured speedup is attached to ``benchmark.extra_info``.
    """
    k, d, seed = 4, 8, 0

    def scalar_once() -> float:
        start = time.perf_counter()
        run_kd_choice(n_bins=ENGINE_N, k=k, d=d, seed=seed)
        return time.perf_counter() - start

    def vectorized_once() -> float:
        start = time.perf_counter()
        run_kd_choice_vectorized(n_bins=ENGINE_N, k=k, d=d, seed=seed)
        return time.perf_counter() - start

    # Best-of-N on both sides, with a few whole-measurement retries, so a
    # transient CPU-contention spike (e.g. a busy CI runner) cannot fail the
    # comparison: the minimum over repeats approximates the uncontended time.
    speedup = 0.0
    scalar_time = vectorized_time = float("inf")
    for _attempt in range(3):
        scalar_time = min(scalar_once() for _ in range(5))
        vectorized_time = min(vectorized_once() for _ in range(5))
        speedup = scalar_time / vectorized_time
        if speedup >= 3.0:
            break

    scalar_result = run_kd_choice(n_bins=ENGINE_N, k=k, d=d, seed=seed)
    vectorized_result = benchmark(
        run_kd_choice_vectorized, n_bins=ENGINE_N, k=k, d=d, seed=seed
    )
    assert (scalar_result.loads == vectorized_result.loads).all()
    benchmark.extra_info["scalar_seconds"] = round(scalar_time, 4)
    benchmark.extra_info["vectorized_seconds"] = round(vectorized_time, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= 3.0, (
        f"vectorized engine only {speedup:.2f}x faster than scalar "
        f"(scalar {scalar_time:.3f}s, vectorized {vectorized_time:.3f}s)"
    )
