"""Micro-benchmarks of the core allocation loop.

These are conventional timing benchmarks (multiple rounds) rather than
experiment reproductions: they track the throughput of the (k, d)-choice
inner loop and the vectorized single-choice baseline so performance
regressions in the substrate are visible.

The ``TestFamilySpeedups`` class asserts the vectorized-engine contract for
the newly covered scheme families (weighted, stale, dynamic churn and the
adaptive comparators must each run >= 3x faster than their scalar
reference), and ``test_streaming_mode_memory_and_throughput`` pins the
chunked/streaming memory bound that makes n >= 10^7 runs practical.
"""

from __future__ import annotations

import time
import tracemalloc

import pytest

from repro.core.adaptive import run_threshold_adaptive, run_two_phase_adaptive
from repro.core.baselines import (
    run_always_go_left,
    run_one_plus_beta,
    run_single_choice,
)
from repro.core.dynamic import run_churn_kd_choice
from repro.core.process import run_kd_choice
from repro.core.stale import run_stale_kd_choice
from repro.core.vectorized import (
    run_always_go_left_vectorized,
    run_churn_kd_choice_vectorized,
    run_kd_choice_vectorized,
    run_one_plus_beta_vectorized,
    run_stale_kd_choice_vectorized,
    run_threshold_adaptive_vectorized,
    run_two_phase_adaptive_vectorized,
    run_weighted_kd_choice_vectorized,
)
from repro.core.weighted import run_weighted_kd_choice

MICRO_N = 1 << 14

#: Problem size of the scalar-vs-vectorized engine comparison.
ENGINE_N = 100_000


def _best_of(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_speedup(
    scalar,
    vectorized,
    minimum: float,
    repeats: int = 3,
    attempts: int = 3,
) -> "tuple[float, float, float]":
    """Best-of-N timing on both sides with whole-measurement retries.

    A transient CPU-contention spike (e.g. a busy CI runner) cannot fail the
    comparison: the minimum over repeats approximates the uncontended time,
    and the measurement restarts when the target is missed.
    """
    speedup, scalar_time, vectorized_time = 0.0, float("inf"), float("inf")
    for _attempt in range(attempts):
        scalar_time = _best_of(scalar, repeats)
        vectorized_time = _best_of(vectorized, repeats)
        speedup = scalar_time / vectorized_time
        if speedup >= minimum:
            break
    return speedup, scalar_time, vectorized_time


@pytest.mark.parametrize("k,d", [(1, 2), (4, 8), (16, 17), (64, 128)])
def test_throughput_kd_choice(benchmark, k, d):
    result = benchmark(run_kd_choice, n_bins=MICRO_N, k=k, d=d, seed=0)
    assert result.total_balls_check()
    benchmark.extra_info["balls_placed"] = MICRO_N
    benchmark.extra_info["max_load"] = result.max_load


def test_throughput_single_choice_vectorized(benchmark):
    result = benchmark(run_single_choice, MICRO_N, seed=0)
    assert result.total_balls_check()
    benchmark.extra_info["balls_placed"] = MICRO_N


def test_throughput_heavy_load(benchmark):
    result = benchmark(
        run_kd_choice, n_bins=MICRO_N // 4, k=4, d=8, n_balls=MICRO_N, seed=0
    )
    assert int(result.loads.sum()) == MICRO_N
    benchmark.extra_info["balls_placed"] = MICRO_N


@pytest.mark.parametrize("k,d", [(1, 2), (4, 8), (16, 17)])
def test_throughput_kd_choice_vectorized(benchmark, k, d):
    result = benchmark(run_kd_choice_vectorized, n_bins=MICRO_N, k=k, d=d, seed=0)
    assert result.total_balls_check()
    benchmark.extra_info["balls_placed"] = MICRO_N
    benchmark.extra_info["max_load"] = result.max_load


def test_vectorized_speedup_over_scalar(benchmark):
    """The vectorized engine must beat the scalar loop >= 3x on the hot case.

    ``n = 10^5, k = 4, d = 8`` is the acceptance anchor: both engines run the
    identical workload (and are checked to produce identical loads), and the
    measured speedup is attached to ``benchmark.extra_info``.
    """
    k, d, seed = 4, 8, 0
    speedup, scalar_time, vectorized_time = _measure_speedup(
        lambda: run_kd_choice(n_bins=ENGINE_N, k=k, d=d, seed=seed),
        lambda: run_kd_choice_vectorized(n_bins=ENGINE_N, k=k, d=d, seed=seed),
        minimum=3.0,
        repeats=5,
    )

    scalar_result = run_kd_choice(n_bins=ENGINE_N, k=k, d=d, seed=seed)
    vectorized_result = benchmark(
        run_kd_choice_vectorized, n_bins=ENGINE_N, k=k, d=d, seed=seed
    )
    assert (scalar_result.loads == vectorized_result.loads).all()
    benchmark.extra_info["scalar_seconds"] = round(scalar_time, 4)
    benchmark.extra_info["vectorized_seconds"] = round(vectorized_time, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= 3.0, (
        f"vectorized engine only {speedup:.2f}x faster than scalar "
        f"(scalar {scalar_time:.3f}s, vectorized {vectorized_time:.3f}s)"
    )


class TestFamilySpeedups:
    """Per-family acceptance: every newly covered family must hold >= 3x.

    The (1+beta)-choice and Always-Go-Left baselines are covered for
    *equivalence* (and are asserted never to regress below scalar parity /
    a softer floor): their scalar loops are only a handful of Python
    operations per ball, so the batch engine's margin is structurally
    smaller there.
    """

    def _assert_family(self, benchmark, name, scalar, vectorized, minimum):
        speedup, scalar_time, vectorized_time = _measure_speedup(
            scalar, vectorized, minimum=minimum
        )
        benchmark.extra_info["scalar_seconds"] = round(scalar_time, 4)
        benchmark.extra_info["vectorized_seconds"] = round(vectorized_time, 4)
        benchmark.extra_info["speedup"] = round(speedup, 2)
        benchmark(vectorized)
        assert speedup >= minimum, (
            f"{name}: vectorized only {speedup:.2f}x faster than scalar "
            f"(needs >= {minimum}x; scalar {scalar_time:.3f}s, "
            f"vectorized {vectorized_time:.3f}s)"
        )

    def test_weighted_family_speedup(self, benchmark):
        self._assert_family(
            benchmark,
            "weighted_kd_choice",
            lambda: run_weighted_kd_choice(ENGINE_N, 4, 8, weights="exponential", seed=0),
            lambda: run_weighted_kd_choice_vectorized(
                ENGINE_N, 4, 8, weights="exponential", seed=0
            ),
            minimum=3.0,
        )

    def test_stale_family_speedup(self, benchmark):
        self._assert_family(
            benchmark,
            "stale_kd_choice",
            lambda: run_stale_kd_choice(ENGINE_N, 4, 8, stale_rounds=8, seed=0),
            lambda: run_stale_kd_choice_vectorized(
                ENGINE_N, 4, 8, stale_rounds=8, seed=0
            ),
            minimum=3.0,
        )

    def test_churn_family_speedup(self, benchmark):
        self._assert_family(
            benchmark,
            "churn_kd_choice",
            lambda: run_churn_kd_choice(4096, 4, 8, rounds=256, seed=0),
            lambda: run_churn_kd_choice_vectorized(4096, 4, 8, rounds=256, seed=0),
            minimum=3.0,
        )

    def test_adaptive_family_speedup(self, benchmark):
        self._assert_family(
            benchmark,
            "threshold_adaptive",
            lambda: run_threshold_adaptive(2 * ENGINE_N, seed=0),
            lambda: run_threshold_adaptive_vectorized(2 * ENGINE_N, seed=0),
            minimum=3.0,
        )

    def test_two_phase_adaptive_never_regresses(self, benchmark):
        self._assert_family(
            benchmark,
            "two_phase_adaptive",
            lambda: run_two_phase_adaptive(ENGINE_N, seed=0),
            lambda: run_two_phase_adaptive_vectorized(ENGINE_N, seed=0),
            minimum=1.5,
        )

    def test_always_go_left_never_regresses(self, benchmark):
        self._assert_family(
            benchmark,
            "always_go_left",
            lambda: run_always_go_left(ENGINE_N, d=4, seed=0),
            lambda: run_always_go_left_vectorized(ENGINE_N, d=4, seed=0),
            minimum=1.5,
        )

    def test_one_plus_beta_never_regresses(self, benchmark):
        # The scalar loop here is near-optimal Python (one comparison per
        # ball); parity is the bar, the equivalence is the feature.
        self._assert_family(
            benchmark,
            "one_plus_beta",
            lambda: run_one_plus_beta(ENGINE_N, beta=0.5, seed=0),
            lambda: run_one_plus_beta_vectorized(ENGINE_N, beta=0.5, seed=0),
            minimum=0.7,
        )


def test_streaming_mode_memory_and_throughput(benchmark):
    """Chunked streaming keeps peak buffer memory at O(chunk * d + n_bins).

    A 2*10^6-ball run must stay within a small multiple of the load vector's
    own footprint (the 4096-round sample chunks are ~256 KiB each), which is
    what makes n >= 10^7 runs practical; the realized throughput is attached
    to ``benchmark.extra_info``.
    """
    n, k, d, chunk_rounds = 2_000_000, 4, 8, 4096

    tracemalloc.start()
    start = time.perf_counter()
    result = run_kd_choice_vectorized(
        n_bins=n, k=k, d=d, seed=0, chunk_rounds=chunk_rounds
    )
    elapsed = time.perf_counter() - start
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert result.total_balls_check()
    loads_bytes = result.loads.nbytes
    chunk_bytes = chunk_rounds * d * 8 * 2  # samples (int64) + tie-breaks (float64)
    budget = 3 * loads_bytes + 16 * chunk_bytes + (32 << 20)
    benchmark.extra_info["balls"] = n
    benchmark.extra_info["peak_mib"] = round(peak_bytes / (1 << 20), 1)
    benchmark.extra_info["budget_mib"] = round(budget / (1 << 20), 1)
    benchmark.extra_info["balls_per_second"] = int(n / elapsed)
    assert peak_bytes <= budget, (
        f"streaming run peaked at {peak_bytes / (1 << 20):.1f} MiB, "
        f"budget {budget / (1 << 20):.1f} MiB"
    )

    benchmark(
        run_kd_choice_vectorized,
        n_bins=n // 4,
        k=k,
        d=d,
        seed=0,
        chunk_rounds=chunk_rounds,
    )
