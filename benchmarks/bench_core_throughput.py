"""Micro-benchmarks of the core allocation loop.

These are conventional timing benchmarks (multiple rounds) rather than
experiment reproductions: they track the throughput of the (k, d)-choice
inner loop and the vectorized single-choice baseline so performance
regressions in the substrate are visible.
"""

from __future__ import annotations

import pytest

from repro.core.baselines import run_single_choice
from repro.core.process import run_kd_choice

MICRO_N = 1 << 14


@pytest.mark.parametrize("k,d", [(1, 2), (4, 8), (16, 17), (64, 128)])
def test_throughput_kd_choice(benchmark, k, d):
    result = benchmark(run_kd_choice, n_bins=MICRO_N, k=k, d=d, seed=0)
    assert result.total_balls_check()
    benchmark.extra_info["balls_placed"] = MICRO_N
    benchmark.extra_info["max_load"] = result.max_load


def test_throughput_single_choice_vectorized(benchmark):
    result = benchmark(run_single_choice, MICRO_N, seed=0)
    assert result.total_balls_check()
    benchmark.extra_info["balls_placed"] = MICRO_N


def test_throughput_heavy_load(benchmark):
    result = benchmark(
        run_kd_choice, n_bins=MICRO_N // 4, k=4, d=8, n_balls=MICRO_N, seed=0
    )
    assert int(result.loads.sum()) == MICRO_N
    benchmark.extra_info["balls_placed"] = MICRO_N
