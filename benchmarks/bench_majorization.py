"""Bench: Section 3 majorization chain — empirical stochastic-order checks.

Paper reference: Properties (ii)–(v) of Section 3 and the sandwich
``A(1, d−k+1) ≤_mj A(k, d) ≤_mj A(1, ⌊d/k⌋)`` used to prove Theorem 2.
"""

from __future__ import annotations

from repro.experiments.majorization_exp import majorization_table, run_majorization_chain

MAJ_N = 3 * 2 ** 10
CONFIGS = ((3, 5), (8, 12))


def test_majorization_chain(benchmark, run_once, bench_seed):
    experiments = run_once(
        run_majorization_chain,
        n=MAJ_N,
        configurations=CONFIGS,
        trials=8,
        seed=bench_seed,
    )
    print("\n" + majorization_table(experiments).to_text())

    consistent = sum(1 for e in experiments if e.report.consistent)
    benchmark.extra_info["consistent"] = consistent
    benchmark.extra_info["total"] = len(experiments)

    # Six orderings are checked (three per configuration); the large
    # majority must be empirically consistent, and the mean max loads must
    # never invert the claimed order by more than half a ball.
    assert consistent >= len(experiments) - 1
    for experiment in experiments:
        report = experiment.report
        assert report.mean_max_small <= report.mean_max_large + 0.5, experiment.claim
