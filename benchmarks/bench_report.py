"""Bench trajectory aggregator: one ``BENCH_ONLINE.json`` artifact per run.

Measures, for every ``online=``-capable scheme, three throughputs on the
same workload size (``--items``, default 200k):

* ``batch`` — one ``simulate()`` call (the engine the spec resolves to),
* ``stream`` — the scalar ``place()`` loop (measured on a reduced item
  count and normalized, it is the per-request reference path),
* ``place_batch`` — chunked streaming ingestion through the batch kernels,

and writes them as ``scheme -> items/sec`` into a single JSON artifact that
CI uploads, so the streaming-vs-batch trajectory accumulates across runs.
Any sibling ``BENCH_*.json`` files already present in the working directory
(e.g. produced by other bench harnesses) are folded into the artifact under
``"collected"``.

Usage::

    PYTHONPATH=src python benchmarks/bench_report.py --items 200000 \
        --output BENCH_ONLINE.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from repro.api import REGISTRY, SchemeSpec, get_scheme, simulate
from repro.online import OnlineAllocator

#: Scheme-specific parameters (n_bins/n_balls are filled in per run).
SCHEME_PARAMS: Dict[str, Dict[str, Any]] = {
    "kd_choice": {"k": 4, "d": 8},
    "greedy_kd_choice": {"k": 4, "d": 8},
    "d_choice": {"d": 4},
    "two_choice": {},
    "single_choice": {},
    "batch_random": {"k": 8},
    "weighted_kd_choice": {"k": 4, "d": 8},
    "stale_kd_choice": {"k": 4, "d": 8, "stale_rounds": 8},
    "one_plus_beta": {"beta": 0.5},
    "always_go_left": {"d": 4},
    "threshold_adaptive": {},
    "two_phase_adaptive": {},
    "serialized_kd_choice": {"k": 4, "d": 8},
}

#: Schemes whose per-item reference loop is slow enough that the scalar
#: stream measurement uses a reduced item count (normalized to items/sec).
SCALAR_STREAM_CAP = 50_000


def _spec(scheme: str, items: int, engine: str) -> SchemeSpec:
    params = dict(SCHEME_PARAMS.get(scheme, {}))
    params["n_bins"] = items
    params["n_balls"] = items
    return SchemeSpec(scheme=scheme, params=params, seed=0, engine=engine)


def _measure_scheme(scheme: str, items: int) -> Dict[str, Any]:
    # Batch engine throughput (whatever engine "auto" resolves to).
    start = time.perf_counter()
    batch_result = simulate(_spec(scheme, items, "auto"))
    batch_seconds = time.perf_counter() - start

    # Scalar place() loop (reduced size, normalized).
    scalar_items = min(items, SCALAR_STREAM_CAP)
    allocator = OnlineAllocator(_spec(scheme, scalar_items, "scalar"))
    place = allocator.place
    start = time.perf_counter()
    for _ in range(scalar_items):
        place()
    scalar_seconds = time.perf_counter() - start

    # Chunked streaming ingestion.
    allocator = OnlineAllocator(_spec(scheme, items, "auto"))
    start = time.perf_counter()
    remaining = items
    while remaining:
        take = min(16_384, remaining)
        allocator.place_batch(take)
        remaining -= take
    stream_seconds = time.perf_counter() - start
    if not np.array_equal(allocator.loads, batch_result.loads):
        raise AssertionError(
            f"{scheme}: streaming loads diverged from the batch engine"
        )

    return {
        "items": items,
        "batch_items_per_sec": int(items / batch_seconds),
        "stream_items_per_sec": int(scalar_items / scalar_seconds),
        "place_batch_items_per_sec": int(items / stream_seconds),
        "place_batch_vs_stream": round(
            (items / stream_seconds) / (scalar_items / scalar_seconds), 2
        ),
    }


def _collect_existing(output: Path) -> Dict[str, Any]:
    collected: Dict[str, Any] = {}
    for path in sorted(Path(".").glob("BENCH_*.json")):
        if path.resolve() == output.resolve():
            continue
        try:
            collected[path.name] = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            collected[path.name] = {"error": "unreadable"}
    return collected


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--items", type=int, default=200_000)
    parser.add_argument("--output", type=str, default="BENCH_ONLINE.json")
    parser.add_argument(
        "--schemes", nargs="*", default=None,
        help="subset of online schemes to measure (default: all)",
    )
    args = parser.parse_args(argv)

    online = [
        name for name in REGISTRY.names() if get_scheme(name).online is not None
    ]
    selected = args.schemes if args.schemes else online
    unknown = sorted(set(selected) - set(online))
    if unknown:
        parser.error(f"not online-capable: {unknown}; choose from {online}")

    report: Dict[str, Any] = {
        "artifact": "BENCH_ONLINE",
        "version": 1,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": os.cpu_count() or 1,
        "items": args.items,
        "schemes": {},
    }
    for scheme in selected:
        report["schemes"][scheme] = _measure_scheme(scheme, args.items)
        line = report["schemes"][scheme]
        print(
            f"{scheme:<22} batch {line['batch_items_per_sec']:>10,}/s  "
            f"stream {line['stream_items_per_sec']:>9,}/s  "
            f"place_batch {line['place_batch_items_per_sec']:>10,}/s  "
            f"({line['place_batch_vs_stream']}x)"
        )
    output = Path(args.output)
    report["collected"] = _collect_existing(output)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output} ({len(report['schemes'])} schemes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
