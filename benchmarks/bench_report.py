"""Bench trajectory aggregator: one ``BENCH_*.json`` artifact per run.

Two artifacts share this harness (``--artifact``):

``online`` (default, ``BENCH_ONLINE.json``) measures, for every
``online=``-capable scheme, three throughputs on the same workload size
(``--items``, default 200k):

* ``batch`` — one ``simulate()`` call (the engine the spec resolves to),
* ``stream`` — the scalar ``place()`` loop (measured on a reduced item
  count and normalized, it is the per-request reference path),
* ``place_batch`` — chunked streaming ingestion through the batch kernels.

``core`` (``BENCH_CORE.json``) measures, for every compiled-covered anchor
scheme, one ``simulate()`` per engine tier — ``scalar`` (reduced count,
normalized), ``vectorized`` and ``compiled`` (skipped with a recorded
reason when the C backend cannot build) — plus the tier-over-tier speedup
ratios CI floors ride on.

Both write ``scheme -> items/sec`` lines into the ``series`` section of
the shared version-2 envelope (see :mod:`bench_envelope`) that CI uploads
and gates with ``repro bench --compare``, so the throughput trajectory
accumulates across runs.  Any sibling ``BENCH_*.json`` files already
present in the working directory are folded into the artifact under
``"collected"``.

Usage::

    PYTHONPATH=src python benchmarks/bench_report.py --items 200000 \
        --output BENCH_ONLINE.json
    PYTHONPATH=src python benchmarks/bench_report.py --artifact core \
        --items 2000000 --output BENCH_CORE.json
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from repro.api import REGISTRY, SchemeSpec, get_scheme, simulate
from repro.online import OnlineAllocator

#: Scheme-specific parameters (n_bins/n_balls are filled in per run).
SCHEME_PARAMS: Dict[str, Dict[str, Any]] = {
    "kd_choice": {"k": 4, "d": 8},
    "greedy_kd_choice": {"k": 4, "d": 8},
    "d_choice": {"d": 4},
    "two_choice": {},
    "single_choice": {},
    "batch_random": {"k": 8},
    "weighted_kd_choice": {"k": 4, "d": 8},
    "stale_kd_choice": {"k": 4, "d": 8, "stale_rounds": 8},
    "one_plus_beta": {"beta": 0.5},
    "always_go_left": {"d": 4},
    "threshold_adaptive": {},
    "two_phase_adaptive": {},
    "serialized_kd_choice": {"k": 4, "d": 8},
}

#: Schemes whose per-item reference loop is slow enough that the scalar
#: stream measurement uses a reduced item count (normalized to items/sec).
SCALAR_STREAM_CAP = 50_000

#: Anchor schemes of the ``core`` artifact: every scheme with a compiled
#: engine, measured per tier.  (d_choice/two_choice are kd specializations
#: but resolve their own kernels, so they are anchored separately.)
CORE_ANCHORS = (
    "kd_choice",
    "d_choice",
    "two_choice",
    "stale_kd_choice",
    "weighted_kd_choice",
    "one_plus_beta",
    "always_go_left",
    "threshold_adaptive",
    "two_phase_adaptive",
)


def _spec(scheme: str, items: int, engine: str) -> SchemeSpec:
    params = dict(SCHEME_PARAMS.get(scheme, {}))
    params["n_bins"] = items
    params["n_balls"] = items
    return SchemeSpec(scheme=scheme, params=params, seed=0, engine=engine)


def _measure_scheme(scheme: str, items: int) -> Dict[str, Any]:
    # Batch engine throughput (whatever engine "auto" resolves to).
    start = time.perf_counter()
    batch_result = simulate(_spec(scheme, items, "auto"))
    batch_seconds = time.perf_counter() - start

    # Scalar place() loop (reduced size, normalized).
    scalar_items = min(items, SCALAR_STREAM_CAP)
    allocator = OnlineAllocator(_spec(scheme, scalar_items, "scalar"))
    place = allocator.place
    start = time.perf_counter()
    for _ in range(scalar_items):
        place()
    scalar_seconds = time.perf_counter() - start

    # Chunked streaming ingestion.
    allocator = OnlineAllocator(_spec(scheme, items, "auto"))
    start = time.perf_counter()
    remaining = items
    while remaining:
        take = min(16_384, remaining)
        allocator.place_batch(take)
        remaining -= take
    stream_seconds = time.perf_counter() - start
    if not np.array_equal(allocator.loads, batch_result.loads):
        raise AssertionError(
            f"{scheme}: streaming loads diverged from the batch engine"
        )

    return {
        "items": items,
        "batch_items_per_sec": int(items / batch_seconds),
        "stream_items_per_sec": int(scalar_items / scalar_seconds),
        "place_batch_items_per_sec": int(items / stream_seconds),
        "place_batch_vs_stream": round(
            (items / stream_seconds) / (scalar_items / scalar_seconds), 2
        ),
    }


def _measure_core_scheme(
    scheme: str, items: int, compiled_available: bool
) -> Dict[str, Any]:
    """One ``simulate()`` per engine tier, loads cross-checked per tier."""
    line: Dict[str, Any] = {"items": items}

    # Scalar reference (reduced count, normalized to items/sec).
    scalar_items = min(items, SCALAR_STREAM_CAP)
    start = time.perf_counter()
    simulate(_spec(scheme, scalar_items, "scalar"))
    scalar_seconds = time.perf_counter() - start
    line["scalar_items_per_sec"] = int(scalar_items / scalar_seconds)

    start = time.perf_counter()
    vectorized = simulate(_spec(scheme, items, "vectorized"))
    vectorized_seconds = time.perf_counter() - start
    line["vectorized_items_per_sec"] = int(items / vectorized_seconds)
    line["vectorized_vs_scalar"] = round(
        line["vectorized_items_per_sec"] / line["scalar_items_per_sec"], 2
    )

    if compiled_available:
        start = time.perf_counter()
        compiled = simulate(_spec(scheme, items, "compiled"))
        compiled_seconds = time.perf_counter() - start
        if not np.array_equal(compiled.loads, vectorized.loads):
            raise AssertionError(
                f"{scheme}: compiled loads diverged from the vectorized engine"
            )
        line["compiled_items_per_sec"] = int(items / compiled_seconds)
        line["compiled_vs_vectorized"] = round(
            line["compiled_items_per_sec"] / line["vectorized_items_per_sec"], 2
        )
        line["compiled_vs_scalar"] = round(
            line["compiled_items_per_sec"] / line["scalar_items_per_sec"], 2
        )
    return line


#: Schemes the ``--compiled-floor`` gate applies to: anchors whose work is
#: dominated by the per-ball placement loop the C kernels replace (the
#: RNG-draw-bound anchors are measured and recorded but not floored).
FLOOR_SCHEMES = ("d_choice", "two_choice", "one_plus_beta",
                 "always_go_left", "two_phase_adaptive")


def _run_core(
    series: Dict[str, Dict[str, Any]],
    items: int,
    selected: list,
    compiled_floor: Optional[float] = None,
) -> Dict[str, Any]:
    from repro.core.compiled import backend_unavailable_reason

    reason = backend_unavailable_reason()
    backend = (
        {"available": True} if reason is None
        else {"available": False, "reason": reason}
    )
    for scheme in selected:
        line = _measure_core_scheme(scheme, items, reason is None)
        series[scheme] = line
        compiled_rate = line.get("compiled_items_per_sec")
        compiled_text = (
            f"compiled {compiled_rate:>11,}/s ({line['compiled_vs_vectorized']}x)"
            if compiled_rate is not None else "compiled unavailable"
        )
        print(
            f"{scheme:<22} scalar {line['scalar_items_per_sec']:>9,}/s  "
            f"vectorized {line['vectorized_items_per_sec']:>11,}/s  "
            f"{compiled_text}"
        )
    if compiled_floor is not None:
        if reason is not None:
            raise SystemExit(
                f"--compiled-floor requires the compiled backend: {reason}"
            )
        missed = [
            f"{scheme} {series[scheme]['compiled_vs_vectorized']}x"
            for scheme in FLOOR_SCHEMES
            if scheme in series
            and series[scheme]["compiled_vs_vectorized"] < compiled_floor
        ]
        if missed:
            raise SystemExit(
                f"compiled tier below the {compiled_floor}x floor over "
                f"vectorized: {', '.join(missed)}"
            )
        print(f"compiled floor met (>= {compiled_floor}x over vectorized "
              f"on {', '.join(s for s in FLOOR_SCHEMES if s in series)})")
    return backend


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifact", choices=("online", "core"), default="online",
        help="online: streaming-vs-batch per online scheme; "
        "core: per-engine-tier simulate() throughput per anchor scheme",
    )
    parser.add_argument("--items", type=int, default=200_000)
    parser.add_argument(
        "--output", type=str, default=None,
        help="output path (default: BENCH_<ARTIFACT>.json)",
    )
    parser.add_argument(
        "--schemes", nargs="*", default=None,
        help="subset of schemes to measure (default: all covered)",
    )
    parser.add_argument(
        "--compiled-floor", type=float, default=None, metavar="RATIO",
        help="core artifact only: exit nonzero unless the compiled tier "
        "sustains this speedup over vectorized on the floor anchors",
    )
    args = parser.parse_args(argv)
    if args.compiled_floor is not None and args.artifact != "core":
        parser.error("--compiled-floor applies to --artifact core only")
    if args.output is None:
        args.output = f"BENCH_{args.artifact.upper()}.json"

    if args.artifact == "core":
        covered = list(CORE_ANCHORS)
    else:
        covered = [
            name for name in REGISTRY.names()
            if get_scheme(name).online is not None
        ]
    selected = args.schemes if args.schemes else covered
    unknown = sorted(set(selected) - set(covered))
    if unknown:
        parser.error(f"not covered: {unknown}; choose from {covered}")

    from bench_envelope import write_envelope

    series: Dict[str, Dict[str, Any]] = {}
    extra: Dict[str, Any] = {}
    if args.artifact == "core":
        extra["compiled_backend"] = _run_core(
            series, args.items, selected, args.compiled_floor
        )
    else:
        for scheme in selected:
            series[scheme] = _measure_scheme(scheme, args.items)
            line = series[scheme]
            print(
                f"{scheme:<22} batch {line['batch_items_per_sec']:>10,}/s  "
                f"stream {line['stream_items_per_sec']:>9,}/s  "
                f"place_batch {line['place_batch_items_per_sec']:>10,}/s  "
                f"({line['place_batch_vs_stream']}x)"
            )
    output = Path(args.output)
    write_envelope(
        output, f"BENCH_{args.artifact.upper()}", args.items, series, **extra
    )
    print(f"wrote {output} ({len(series)} series)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
