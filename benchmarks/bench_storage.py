"""Bench: distributed storage application (Section 1.3).

Paper reference: the Section 1.3 argument that storing the ``k`` replicas (or
chunks) of a file on the ``k`` least loaded of ``d = k + 1`` probed servers
gives load balance comparable to per-replica two-choice at roughly half the
placement message cost, and lookups that contact ``k + 1`` candidate servers
instead of ``2k``.
"""

from __future__ import annotations

from repro.experiments.applications import run_storage_experiment, storage_table

N_SERVERS = 1024
N_FILES = 8192
REPLICAS = (2, 3, 8)


def test_storage_placement_balance_and_cost(benchmark, run_once, bench_seed):
    comparisons = run_once(
        run_storage_experiment,
        n_servers=N_SERVERS,
        n_files=N_FILES,
        replica_values=REPLICAS,
        seed=bench_seed,
    )
    print("\n" + storage_table(comparisons).to_text())

    for comparison in comparisons:
        reports = comparison.reports
        random_policy = reports["random"]
        two_choice = next(v for name, v in reports.items() if "per-replica" in name)
        kd_plus_one = next(v for name, v in reports.items() if "d=k+1" in name)
        kd_double = next(v for name, v in reports.items() if "d=2k" in name)
        k = comparison.replicas
        benchmark.extra_info[f"replicas={k}"] = {
            "random_max": random_policy.max_load,
            "two_choice_max": two_choice.max_load,
            "kd_plus_one_max": kd_plus_one.max_load,
            "kd_double_max": kd_double.max_load,
        }

        # Probe-based placement beats random placement on the max server load.
        assert kd_plus_one.max_load <= random_policy.max_load
        assert kd_double.max_load <= random_policy.max_load
        # (k, k+1)-choice costs about (k+1)/(2k) of two-choice's messages...
        expected_ratio = (k + 1) / (2 * k)
        measured_ratio = kd_plus_one.messages_per_file / two_choice.messages_per_file
        assert abs(measured_ratio - expected_ratio) < 0.05
        # ...with comparable balance.  At 8192 files on 1024 servers the
        # system is heavily loaded (~8k replicas per server for k = 8), where
        # d = k + 1 concedes a few extra replicas to two-choice; the gap to
        # random placement remains far larger.
        assert kd_plus_one.max_load <= two_choice.max_load + 4
        assert kd_plus_one.gap <= 0.5 * random_policy.gap + 1.0
        # Lookup cost: k + 1 candidates vs 2k for per-chunk two-choice.
        assert kd_plus_one.mean_lookup_cost == k + 1
        assert two_choice.mean_lookup_cost == 2 * k
